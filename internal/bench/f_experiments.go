package bench

import (
	"fmt"
	"math"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/stats"
	"gridpipe/internal/topo"
	"gridpipe/internal/trace"
	"gridpipe/internal/workload"
)

func init() {
	register(Experiment{ID: "F1", Title: "Throughput timeline under a load spike: static vs adaptive vs oracle", Run: runF1})
	register(Experiment{ID: "F2", Title: "Makespan and speedup vs processor count", Run: runF2})
	register(Experiment{ID: "F3", Title: "Adaptation benefit vs perturbation intensity (crossover)", Run: runF3})
	register(Experiment{ID: "F4", Title: "Throughput vs replica count for the bottleneck stage", Run: runF4})
	register(Experiment{ID: "F5", Title: "Adaptation benefit vs node heterogeneity", Run: runF5})
	register(Experiment{ID: "F6", Title: "Throughput and efficiency vs stage count", Run: runF6})
	register(Experiment{ID: "F8", Title: "Diamond DAG vs linear chain: throughput, latency, adaptation", Run: runF8})
}

// F1: image pipeline on 6 nodes; the node hosting the bottleneck stage
// is hit by an 85% load step at t=60 of a 180 s horizon. One throughput
// series per policy plus a summary table.
func runF1(seed uint64) (*Result, error) {
	const (
		horizon = 180.0
		spikeAt = 60.0
		level   = 0.85
		window  = 5.0
	)
	app := workload.Image()

	// Find the deployment-time mapping on an idle copy of the grid, so
	// we know which node hosts the heavy "filter" stage and can aim the
	// spike at it.
	idle, err := spikeGrid(6, -1, 0, 0)
	if err != nil {
		return nil, err
	}
	m0, err := initialMapping(idle, app, seed)
	if err != nil {
		return nil, err
	}
	victim := int(m0.Assign[1][0]) // the filter stage's first replica

	res := &Result{ID: "F1", Title: "throughput timeline under load spike"}
	tb := stats.NewTable("F1 summary (spike ×"+fmt.Sprintf("%.0f%%", level*100)+" at t=60)",
		"policy", "items done", "thr before", "thr after", "remaps", "migrated")
	for _, p := range mainPolicies {
		g, err := spikeGrid(6, victim, spikeAt, level)
		if err != nil {
			return nil, err
		}
		out, err := run(runConfig{
			Grid: g, App: app, Initial: m0, Policy: p,
			Interval: 1, Seed: seed, Duration: horizon,
		})
		if err != nil {
			return nil, err
		}
		series := stats.WindowRate(out.Exec.Monitor().Completions(), 0, horizon, window)
		series.Name = p.String()
		res.Series = append(res.Series, series)
		before := meanRateIn(out.Exec.Monitor().Completions(), window, spikeAt)
		after := meanRateIn(out.Exec.Monitor().Completions(), spikeAt+2*window, horizon)
		migrated := out.Exec.Migrations()
		tb.AddRowf(p.String(), out.Done, before, after, out.Ctrl.Remaps, migrated)
	}
	tb.AddNote("expected shape: all policies equal before the spike; adaptive/oracle recover after it, static does not")
	res.Tables = []*stats.Table{tb}
	return res, nil
}

// meanRateIn returns completions per second within [t0, t1).
func meanRateIn(times []float64, t0, t1 float64) float64 {
	if t1 <= t0 {
		return math.NaN()
	}
	n := 0
	for _, t := range times {
		if t >= t0 && t < t1 {
			n++
		}
	}
	return float64(n) / (t1 - t0)
}

// F2: balanced 6-stage pipeline, 600 items; processor count sweep under
// a mean-reverting random-walk load on every node; static mapping vs
// reactive adaptation. Speedup is against static on one processor.
func runF2(seed uint64) (*Result, error) {
	app := workload.Balanced(6, 0.2, 1e5)
	const items = 600
	counts := []int{1, 2, 4, 6, 8, 12, 16}

	mkGrid := func(np int) (*grid.Grid, error) {
		nodes := make([]*grid.Node, np)
		for i := range nodes {
			nodes[i] = &grid.Node{
				Name: fmt.Sprintf("node%d", i), Speed: 1, Cores: 1,
				Load: walkLoad(seed+uint64(i), 0.25, 1200),
			}
		}
		return grid.NewGrid(grid.LANLink, nodes...)
	}

	res := &Result{ID: "F2", Title: "speedup vs processor count"}
	tb := stats.NewTable("F2 makespan/speedup (600 items, 6 stages, walk load mean 0.25)",
		"Np", "static makespan", "adaptive makespan", "static speedup", "adaptive speedup", "remaps")
	sStatic := stats.NewSeries("static-speedup")
	sAdaptive := stats.NewSeries("adaptive-speedup")

	var base float64
	for _, np := range counts {
		g, err := mkGrid(np)
		if err != nil {
			return nil, err
		}
		m0, err := initialMapping(g, app, seed)
		if err != nil {
			return nil, err
		}
		stc, err := run(runConfig{Grid: g, App: app, Initial: m0,
			Policy: adaptive.PolicyStatic, Seed: seed, Items: items})
		if err != nil {
			return nil, err
		}
		ga, err := mkGrid(np)
		if err != nil {
			return nil, err
		}
		ada, err := run(runConfig{Grid: ga, App: app, Initial: m0,
			Policy: adaptive.PolicyReactive, Interval: 2, Seed: seed, Items: items})
		if err != nil {
			return nil, err
		}
		if np == 1 {
			base = stc.Makespan
		}
		tb.AddRowf(np, stc.Makespan, ada.Makespan, base/stc.Makespan, base/ada.Makespan, ada.Ctrl.Remaps)
		sStatic.Append(float64(np), base/stc.Makespan)
		sAdaptive.Append(float64(np), base/ada.Makespan)
	}
	tb.AddNote("expected shape: speedup saturates near the stage count; adaptive ≥ static throughout")
	res.Tables = []*stats.Table{tb}
	res.Series = []*stats.Series{sStatic, sAdaptive}
	return res, nil
}

func walkLoad(seed uint64, mean, horizon float64) trace.Trace {
	return trace.NewRandomWalk(rngFor(seed), horizon, 1, mean, 0.05, 0.1)
}

// F3: spike-magnitude sweep. For each spike level the same scenario as
// F1 runs static and reactive; the benefit ratio locates the crossover
// below which adaptation is not worth its disruption.
func runF3(seed uint64) (*Result, error) {
	app := workload.Balanced(4, 0.15, 1e5)
	const (
		horizon = 120.0
		spikeAt = 30.0
	)
	levels := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95}

	res := &Result{ID: "F3", Title: "benefit vs perturbation intensity"}
	tb := stats.NewTable("F3 adaptive/static completion ratio vs spike level",
		"spike load", "static done", "adaptive done", "ratio", "remaps")
	series := stats.NewSeries("benefit-ratio")

	idle, err := spikeGrid(6, -1, 0, 0)
	if err != nil {
		return nil, err
	}
	m0, err := initialMapping(idle, app, seed)
	if err != nil {
		return nil, err
	}
	victim := int(m0.Assign[0][0])

	for _, level := range levels {
		gs, err := spikeGrid(6, victim, spikeAt, level)
		if err != nil {
			return nil, err
		}
		stc, err := run(runConfig{Grid: gs, App: app, Initial: m0,
			Policy: adaptive.PolicyStatic, Seed: seed, Duration: horizon})
		if err != nil {
			return nil, err
		}
		ga, err := spikeGrid(6, victim, spikeAt, level)
		if err != nil {
			return nil, err
		}
		ada, err := run(runConfig{Grid: ga, App: app, Initial: m0,
			Policy: adaptive.PolicyReactive, Interval: 1, Seed: seed, Duration: horizon})
		if err != nil {
			return nil, err
		}
		ratio := float64(ada.Done) / float64(stc.Done)
		tb.AddRowf(level, stc.Done, ada.Done, ratio, ada.Ctrl.Remaps)
		series.Append(level, ratio)
	}
	tb.AddNote("expected shape: ratio ≈ 1 for small spikes (hysteresis suppresses remaps), grows with spike level")
	res.Tables = []*stats.Table{tb}
	res.Series = []*stats.Series{series}
	return res, nil
}

// F4: replication sweep. The genome align stage is farmed over k nodes
// with a fixed mapping (no controller); measured and model-predicted
// throughput per k.
func runF4(seed uint64) (*Result, error) {
	app := workload.Genome()
	const items = 800
	g, err := grid.Homogeneous(8, 1, grid.LANLink)
	if err != nil {
		return nil, err
	}

	res := &Result{ID: "F4", Title: "replication of the bottleneck stage"}
	tb := stats.NewTable("F4 genome align-stage farming (8 idle nodes)",
		"replicas", "measured thr", "model thr", "rel err", "speedup")
	series := stats.NewSeries("measured-throughput")

	var base float64
	for k := 1; k <= 6; k++ {
		// parse on node 6, align replicated on nodes 0..k-1, score on 7.
		replicas := make([]grid.NodeID, k)
		for i := range replicas {
			replicas[i] = grid.NodeID(i)
		}
		m := model.FromNodes(6, 0, 7).WithReplicas(1, replicas...)
		pred, err := model.Predict(g, app.Spec, m, nil)
		if err != nil {
			return nil, err
		}
		out, err := run(runConfig{Grid: g, App: app, Initial: m,
			Policy: adaptive.PolicyStatic, Seed: seed, Items: items,
			MaxInFlight: 6 * k})
		if err != nil {
			return nil, err
		}
		thr := float64(items) / out.Makespan
		if k == 1 {
			base = thr
		}
		tb.AddRowf(k, thr, pred.Throughput, stats.RelErr(thr, pred.Throughput), thr/base)
		series.Append(float64(k), thr)
	}
	tb.AddNote("expected shape: near-linear until another stage becomes critical, then flat")
	res.Tables = []*stats.Table{tb}
	res.Series = []*stats.Series{series}
	return res, nil
}

// F5: heterogeneity sweep. Node speeds spread geometrically over ratio
// r. The static baseline is heterogeneity-blind — a plain one-stage-
// per-node round-robin mapping, which is exactly what a skeleton with
// no resource information deploys — while the adaptive run discovers
// the fast nodes at run time. The benefit of adaptation should grow
// with the speed ratio, because a blind placement wastes more and more
// of the fastest processors.
func runF5(seed uint64) (*Result, error) {
	app := workload.Balanced(4, 0.15, 1e5)
	const horizon = 240.0
	ratios := []float64{1, 2, 4, 8, 16}

	res := &Result{ID: "F5", Title: "benefit vs heterogeneity"}
	tb := stats.NewTable("F5 adaptive vs heterogeneity-blind static (8 nodes, round-robin start)",
		"speed ratio", "static done", "adaptive done", "ratio", "remaps")
	series := stats.NewSeries("benefit-ratio")

	for _, r := range ratios {
		mk := func() (*grid.Grid, error) {
			nodes := make([]*grid.Node, 8)
			for i := range nodes {
				// Geometric spread of speeds in [1, r].
				sp := math.Pow(r, float64(i)/7)
				nodes[i] = &grid.Node{
					Name: fmt.Sprintf("node%d", i), Speed: sp, Cores: 1,
					Load: walkLoad(seed+uint64(i)*31+uint64(r*100), 0.2, horizon+60),
				}
			}
			return grid.NewGrid(grid.LANLink, nodes...)
		}
		// Blind deployment: stage i on node i, oblivious to speeds.
		m0 := model.OneToOne(app.Spec.NumStages())
		g1, err := mk()
		if err != nil {
			return nil, err
		}
		stc, err := run(runConfig{Grid: g1, App: app, Initial: m0,
			Policy: adaptive.PolicyStatic, Seed: seed, Duration: horizon})
		if err != nil {
			return nil, err
		}
		g2, err := mk()
		if err != nil {
			return nil, err
		}
		ada, err := run(runConfig{Grid: g2, App: app, Initial: m0,
			Policy: adaptive.PolicyReactive, Interval: 2, Seed: seed, Duration: horizon})
		if err != nil {
			return nil, err
		}
		ratio := float64(ada.Done) / float64(stc.Done)
		tb.AddRowf(r, stc.Done, ada.Done, ratio, ada.Ctrl.Remaps)
		series.Append(r, ratio)
	}
	tb.AddNote("expected shape: benefit grows with heterogeneity (a blind placement wastes the fast nodes)")
	res.Tables = []*stats.Table{tb}
	res.Series = []*stats.Series{series}
	return res, nil
}

// f8Apps builds the two equal-total-work contestants: a diamond
// (head → {left, right} → tail, the branches running concurrently)
// and a linear chain over the same four stages. Total per-item work is
// 0.6 reference-seconds in both; only the topology differs.
func f8Apps() (diamond, linear workload.App, err error) {
	stages := []topo.Stage{
		{Name: "head", Work: 0.05, OutBytes: 1e5, Replicable: true},
		{Name: "left", Work: 0.25, OutBytes: 1e5, Replicable: true},
		{Name: "right", Work: 0.25, OutBytes: 1e5, Replicable: true},
		{Name: "tail", Work: 0.05, OutBytes: 1e4, Replicable: true},
	}
	dg, err := topo.Diamond(stages[0], []topo.Stage{stages[1], stages[2]}, stages[3])
	if err != nil {
		return workload.App{}, workload.App{}, err
	}
	dspec, err := model.FromGraph(dg, 1e5)
	if err != nil {
		return workload.App{}, workload.App{}, err
	}
	lspec, err := model.FromGraph(topo.Chain(stages...), 1e5)
	if err != nil {
		return workload.App{}, workload.App{}, err
	}
	diamond = workload.App{Name: "diamond", Spec: dspec, CV: 0.2}
	linear = workload.App{Name: "linear", Spec: lspec, CV: 0.2}
	return diamond, linear, nil
}

// F8: topology shoot-out. The diamond and the equal-work chain run on
// the same 6-node grid; at t=60 an 85% load step hits the node hosting
// a heavy branch/middle stage. Static and reactive policies run for
// both topologies: the diamond's concurrent branches cut the empty-
// pipeline fill latency, and the adaptive controller remaps the DAG
// exactly as it remaps the chain.
func runF8(seed uint64) (*Result, error) {
	const (
		horizon = 180.0
		spikeAt = 60.0
		level   = 0.85
		window  = 5.0
	)
	diamond, linear, err := f8Apps()
	if err != nil {
		return nil, err
	}

	res := &Result{ID: "F8", Title: "diamond DAG vs linear chain"}
	tb := stats.NewTable("F8 diamond vs chain (equal total work, spike ×85% at t=60)",
		"topology", "policy", "items done", "thr before", "thr after", "fill latency", "remaps", "migrated")

	for _, app := range []workload.App{linear, diamond} {
		// Deployment-time mapping on an idle copy of the grid; the
		// spike then aims at the node hosting the first heavy stage
		// (index 1 in both topologies).
		idle, err := spikeGrid(6, -1, 0, 0)
		if err != nil {
			return nil, err
		}
		m0, err := initialMapping(idle, app, seed)
		if err != nil {
			return nil, err
		}
		victim := int(m0.Assign[1][0])
		for _, p := range []adaptive.Policy{adaptive.PolicyStatic, adaptive.PolicyReactive} {
			g, err := spikeGrid(6, victim, spikeAt, level)
			if err != nil {
				return nil, err
			}
			out, err := run(runConfig{
				Grid: g, App: app, Initial: m0, Policy: p,
				Interval: 1, Seed: seed, Duration: horizon,
			})
			if err != nil {
				return nil, err
			}
			series := stats.WindowRate(out.Exec.Monitor().Completions(), 0, horizon, window)
			series.Name = app.Name + "-" + p.String()
			res.Series = append(res.Series, series)
			before := meanRateIn(out.Exec.Monitor().Completions(), window, spikeAt)
			after := meanRateIn(out.Exec.Monitor().Completions(), spikeAt+2*window, horizon)
			lats := out.Exec.Latencies()
			fill := math.NaN()
			if len(lats) > 0 {
				fill = stats.Mean(lats[:min(10, len(lats))])
			}
			tb.AddRowf(app.Name, p.String(), out.Done, before, after, fill,
				out.Ctrl.Remaps, out.Exec.Migrations())
		}
	}
	tb.AddNote("expected shape: equal throughput before the spike, diamond fill latency below the chain's (branches overlap), reactive recovers both topologies")
	res.Tables = []*stats.Table{tb}
	return res, nil
}

// F6: stage-count scalability on an idle homogeneous grid with one
// node per stage: throughput should hold near 1/grain while per-node
// efficiency decays only with transfer overhead.
func runF6(seed uint64) (*Result, error) {
	const grain = 0.1
	counts := []int{2, 4, 8, 16, 32}
	res := &Result{ID: "F6", Title: "stage-count scalability"}
	tb := stats.NewTable("F6 throughput vs stage count (idle grid, one node per stage)",
		"stages", "measured thr", "ideal thr", "efficiency", "fill latency")
	series := stats.NewSeries("efficiency")
	for _, ns := range counts {
		app := workload.Balanced(ns, grain, 1e5)
		g, err := grid.Homogeneous(ns, 1, grid.LANLink)
		if err != nil {
			return nil, err
		}
		out, err := run(runConfig{Grid: g, App: app, Initial: model.OneToOne(ns),
			Policy: adaptive.PolicyStatic, Seed: seed, Items: 400,
			MaxInFlight: 2 * ns})
		if err != nil {
			return nil, err
		}
		thr := 400 / out.Makespan
		ideal := 1 / grain
		lat := stats.Mean(out.Exec.Latencies()[:10])
		tb.AddRowf(ns, thr, ideal, thr/ideal, lat)
		series.Append(float64(ns), thr/ideal)
	}
	tb.AddNote("expected shape: efficiency stays high; fill latency grows linearly with stage count")
	res.Tables = []*stats.Table{tb}
	res.Series = []*stats.Series{series}
	return res, nil
}
