package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serialises a sampled trace as "t,load" lines. Together with
// ReadCSV it lets experiments replay externally measured load (e.g.
// real NWS logs converted offline) through the same Trace interface.
func WriteCSV(w io.Writer, s *Sampled) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t,load"); err != nil {
		return err
	}
	for i, v := range s.Vals {
		t := s.Start + float64(i)*s.Dt
		if _, err := fmt.Fprintf(bw, "%.6f,%.6f\n", t, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV (or any two-column
// "t,load" CSV with a header and uniformly spaced, ascending times).
func ReadCSV(r io.Reader) (*Sampled, error) {
	sc := bufio.NewScanner(r)
	var times, vals []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 || text == "" {
			continue // header
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %d", line, len(parts))
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %w", line, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad load: %w", line, err)
		}
		if v < 0 || v > MaxLoad {
			return nil, fmt.Errorf("trace: line %d: load %v outside [0, %v]", line, v, MaxLoad)
		}
		if len(times) > 0 && t <= times[len(times)-1] {
			return nil, fmt.Errorf("trace: line %d: non-increasing time %v", line, t)
		}
		times = append(times, t)
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	dt := 1.0
	if len(times) > 1 {
		dt = times[1] - times[0]
	}
	return &Sampled{Start: times[0], Dt: dt, Vals: vals}, nil
}
