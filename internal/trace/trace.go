// Package trace models time-varying background load on grid resources.
//
// A Trace maps virtual time to a background-load fraction in [0, 1):
// the share of a processor consumed by other grid users. The effective
// speed of a node at time t is nominalSpeed * (1 - load(t)). The same
// abstraction describes link quality degradation.
//
// The generators reproduce the load-signal families used to evaluate
// grid-era adaptive systems: constant, step changes (a competing job
// arrives), ramps (gradually filling batch queue), diurnal sine,
// mean-reverting random walk (NWS-like CPU availability measurements),
// and bursty Markov on/off load.
package trace

import (
	"fmt"
	"math"
	"sort"

	"gridpipe/internal/rng"
)

// Trace reports background load at a point in virtual time. At must be
// pure for a given trace value: experiments re-read traces at arbitrary
// times. Implementations must return values in [0, MaxLoad].
type Trace interface {
	At(t float64) float64
}

// MaxLoad is the highest background-load fraction a trace may report.
// A node never becomes completely unavailable (the executor would
// divide by zero); 0.98 leaves a 50x worst-case slowdown.
const MaxLoad = 0.98

// clamp bounds a load value into [0, MaxLoad].
func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > MaxLoad {
		return MaxLoad
	}
	return v
}

// Constant is a fixed background load.
type Constant float64

// At implements Trace.
func (c Constant) At(float64) float64 { return clamp(float64(c)) }

// StepChange is one (time, load) breakpoint of a Steps trace.
type StepChange struct {
	T    float64
	Load float64
}

// Steps is a piecewise-constant trace: load is Initial before the first
// breakpoint and then the load of the latest breakpoint at or before t.
type Steps struct {
	Initial float64
	Changes []StepChange // must be sorted by T ascending
}

// NewSteps builds a Steps trace, sorting the breakpoints by time.
func NewSteps(initial float64, changes ...StepChange) *Steps {
	cs := make([]StepChange, len(changes))
	copy(cs, changes)
	sort.Slice(cs, func(i, j int) bool { return cs[i].T < cs[j].T })
	return &Steps{Initial: initial, Changes: cs}
}

// At implements Trace.
func (s *Steps) At(t float64) float64 {
	load := s.Initial
	i := sort.Search(len(s.Changes), func(i int) bool { return s.Changes[i].T > t })
	if i > 0 {
		load = s.Changes[i-1].Load
	}
	return clamp(load)
}

// Ramp rises linearly from From at T0 to To at T1, constant outside.
type Ramp struct {
	T0, T1   float64
	From, To float64
}

// At implements Trace.
func (r Ramp) At(t float64) float64 {
	switch {
	case t <= r.T0:
		return clamp(r.From)
	case t >= r.T1:
		return clamp(r.To)
	default:
		frac := (t - r.T0) / (r.T1 - r.T0)
		return clamp(r.From + frac*(r.To-r.From))
	}
}

// Sine is a sinusoidal (diurnal-style) load: Base + Amp*sin(2πt/Period + Phase),
// clamped to [0, MaxLoad].
type Sine struct {
	Base, Amp float64
	Period    float64
	Phase     float64
}

// At implements Trace.
func (s Sine) At(t float64) float64 {
	if s.Period <= 0 {
		return clamp(s.Base)
	}
	return clamp(s.Base + s.Amp*math.Sin(2*math.Pi*t/s.Period+s.Phase))
}

// Sampled is a trace defined by equally spaced samples with step
// interpolation; it backs the stochastic generators and CSV replay.
type Sampled struct {
	Start float64
	Dt    float64
	Vals  []float64
}

// At implements Trace.
func (s *Sampled) At(t float64) float64 {
	if len(s.Vals) == 0 {
		return 0
	}
	i := int(math.Floor((t - s.Start) / s.Dt))
	if i < 0 {
		i = 0
	}
	if i >= len(s.Vals) {
		i = len(s.Vals) - 1
	}
	return clamp(s.Vals[i])
}

// Horizon returns the time of the last sample.
func (s *Sampled) Horizon() float64 {
	return s.Start + float64(len(s.Vals))*s.Dt
}

// NewRandomWalk generates a mean-reverting random-walk trace (an
// Ornstein-Uhlenbeck discretisation), the closest synthetic analogue of
// NWS CPU-availability measurements: load wanders around mean with
// volatility sigma, pulled back at rate theta per second.
func NewRandomWalk(r *rng.Rand, horizon, dt, mean, sigma, theta float64) *Sampled {
	if dt <= 0 || horizon <= 0 {
		panic("trace: NewRandomWalk with non-positive dt or horizon")
	}
	n := int(math.Ceil(horizon / dt))
	vals := make([]float64, n)
	v := clamp(mean)
	sq := math.Sqrt(dt)
	for i := 0; i < n; i++ {
		v += theta*(mean-v)*dt + sigma*sq*r.Normal(0, 1)
		v = clamp(v)
		vals[i] = v
	}
	return &Sampled{Dt: dt, Vals: vals}
}

// NewMarkovBurst generates an on/off bursty trace: exponential sojourn
// in the off state (load = base) with mean offMean seconds, and in the
// on state (load = base+burst) with mean onMean seconds. It models a
// competing batch job periodically landing on the node.
func NewMarkovBurst(r *rng.Rand, horizon, dt, base, burst, offMean, onMean float64) *Sampled {
	if dt <= 0 || horizon <= 0 || offMean <= 0 || onMean <= 0 {
		panic("trace: NewMarkovBurst with non-positive parameter")
	}
	n := int(math.Ceil(horizon / dt))
	vals := make([]float64, n)
	t := 0.0
	on := false
	next := r.Exp(1 / offMean)
	for i := 0; i < n; i++ {
		for t >= next {
			on = !on
			if on {
				next += r.Exp(1 / onMean)
			} else {
				next += r.Exp(1 / offMean)
			}
		}
		if on {
			vals[i] = clamp(base + burst)
		} else {
			vals[i] = clamp(base)
		}
		t += dt
	}
	return &Sampled{Dt: dt, Vals: vals}
}

// Scale multiplies another trace by a factor (clamped).
type Scale struct {
	Inner  Trace
	Factor float64
}

// At implements Trace.
func (s Scale) At(t float64) float64 { return clamp(s.Inner.At(t) * s.Factor) }

// Sum adds component traces (clamped). A diurnal sine plus a random
// walk plus occasional bursts composes a realistic grid node.
type Sum []Trace

// At implements Trace.
func (ts Sum) At(t float64) float64 {
	v := 0.0
	for _, tr := range ts {
		v += tr.At(t)
	}
	return clamp(v)
}

// Shift delays another trace by Offset seconds (load before the shifted
// origin is the inner trace's value at its own origin).
type Shift struct {
	Inner  Trace
	Offset float64
}

// At implements Trace.
func (s Shift) At(t float64) float64 { return s.Inner.At(t - s.Offset) }

// Sample evaluates tr at n+1 equally spaced instants across [t0, t1]
// and returns the values; forecaster experiments feed on it.
func Sample(tr Trace, t0, t1 float64, n int) []float64 {
	if n <= 0 {
		panic("trace: Sample with non-positive n")
	}
	out := make([]float64, n+1)
	dt := (t1 - t0) / float64(n)
	for i := 0; i <= n; i++ {
		out[i] = tr.At(t0 + float64(i)*dt)
	}
	return out
}

// Validate walks the trace over [0, horizon] and returns an error if
// any value escapes [0, MaxLoad]; used by tests and config loading.
func Validate(tr Trace, horizon float64) error {
	const n = 1000
	for i := 0; i <= n; i++ {
		t := horizon * float64(i) / n
		v := tr.At(t)
		if v < 0 || v > MaxLoad || math.IsNaN(v) {
			return fmt.Errorf("trace: value %v at t=%v outside [0, %v]", v, t, MaxLoad)
		}
	}
	return nil
}
