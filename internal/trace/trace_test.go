package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gridpipe/internal/rng"
)

func TestConstant(t *testing.T) {
	c := Constant(0.3)
	if c.At(0) != 0.3 || c.At(1e9) != 0.3 {
		t.Fatal("constant trace not constant")
	}
	if Constant(2).At(0) != MaxLoad {
		t.Fatal("constant above MaxLoad should clamp")
	}
	if Constant(-1).At(0) != 0 {
		t.Fatal("negative constant should clamp to 0")
	}
}

func TestSteps(t *testing.T) {
	s := NewSteps(0.1,
		StepChange{T: 10, Load: 0.5},
		StepChange{T: 20, Load: 0.2},
	)
	cases := []struct{ t, want float64 }{
		{0, 0.1}, {9.99, 0.1}, {10, 0.5}, {15, 0.5}, {20, 0.2}, {100, 0.2},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestStepsSortsBreakpoints(t *testing.T) {
	s := NewSteps(0, StepChange{T: 20, Load: 0.4}, StepChange{T: 10, Load: 0.8})
	if got := s.At(15); got != 0.8 {
		t.Fatalf("At(15) = %v, want 0.8 (breakpoints must be sorted)", got)
	}
}

func TestRamp(t *testing.T) {
	r := Ramp{T0: 10, T1: 20, From: 0, To: 0.8}
	if r.At(0) != 0 || r.At(10) != 0 {
		t.Fatal("ramp before T0 wrong")
	}
	if got := r.At(15); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("mid-ramp = %v, want 0.4", got)
	}
	if r.At(20) != 0.8 || r.At(1e6) != 0.8 {
		t.Fatal("ramp after T1 wrong")
	}
}

func TestSine(t *testing.T) {
	s := Sine{Base: 0.5, Amp: 0.3, Period: 100}
	if got := s.At(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("At(0) = %v, want 0.5", got)
	}
	if got := s.At(25); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("At(quarter period) = %v, want 0.8", got)
	}
	if got := s.At(75); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("At(three quarters) = %v, want 0.2", got)
	}
	// Zero period degrades gracefully to the base.
	if got := (Sine{Base: 0.4, Amp: 0.2}).At(5); got != 0.4 {
		t.Fatalf("zero-period sine = %v", got)
	}
}

func TestSineClamps(t *testing.T) {
	s := Sine{Base: 0.9, Amp: 0.5, Period: 10}
	for i := 0; i <= 100; i++ {
		v := s.At(float64(i) / 10)
		if v < 0 || v > MaxLoad {
			t.Fatalf("sine escaped bounds: %v", v)
		}
	}
}

func TestSampledStepInterpolation(t *testing.T) {
	s := &Sampled{Dt: 1, Vals: []float64{0.1, 0.2, 0.3}}
	cases := []struct{ t, want float64 }{
		{-5, 0.1}, {0, 0.1}, {0.99, 0.1}, {1, 0.2}, {2.5, 0.3}, {99, 0.3},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if s.Horizon() != 3 {
		t.Fatalf("Horizon = %v", s.Horizon())
	}
	if (&Sampled{}).At(5) != 0 {
		t.Fatal("empty sampled trace should be 0")
	}
}

func TestRandomWalkBoundsAndMean(t *testing.T) {
	r := rng.New(1)
	s := NewRandomWalk(r, 1000, 0.5, 0.4, 0.05, 0.5)
	sum := 0.0
	for _, v := range s.Vals {
		if v < 0 || v > MaxLoad {
			t.Fatalf("walk escaped bounds: %v", v)
		}
		sum += v
	}
	mean := sum / float64(len(s.Vals))
	if math.Abs(mean-0.4) > 0.1 {
		t.Fatalf("walk mean %v too far from 0.4", mean)
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	a := NewRandomWalk(rng.New(7), 100, 1, 0.3, 0.1, 0.2)
	b := NewRandomWalk(rng.New(7), 100, 1, 0.3, 0.1, 0.2)
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			t.Fatalf("walk not deterministic at %d", i)
		}
	}
}

func TestMarkovBurstLevels(t *testing.T) {
	r := rng.New(3)
	s := NewMarkovBurst(r, 2000, 1, 0.1, 0.6, 50, 20)
	onCount, offCount := 0, 0
	for _, v := range s.Vals {
		switch v {
		case 0.1:
			offCount++
		case 0.7:
			onCount++
		default:
			t.Fatalf("unexpected level %v", v)
		}
	}
	if onCount == 0 || offCount == 0 {
		t.Fatalf("burst trace never switched: on=%d off=%d", onCount, offCount)
	}
	// Off mean 50 vs on mean 20 → roughly 5/7 of time off.
	frac := float64(offCount) / float64(onCount+offCount)
	if frac < 0.5 || frac > 0.9 {
		t.Fatalf("off fraction %v implausible", frac)
	}
}

func TestScaleSumShift(t *testing.T) {
	base := Constant(0.4)
	if got := (Scale{base, 0.5}).At(0); got != 0.2 {
		t.Fatalf("Scale = %v", got)
	}
	if got := (Sum{Constant(0.3), Constant(0.4)}).At(0); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("Sum = %v", got)
	}
	if got := (Sum{Constant(0.9), Constant(0.9)}).At(0); got != MaxLoad {
		t.Fatalf("Sum should clamp: %v", got)
	}
	sh := Shift{NewSteps(0, StepChange{T: 10, Load: 0.5}), 100}
	if sh.At(105) != 0 || sh.At(110) != 0.5 {
		t.Fatal("Shift wrong")
	}
}

func TestSample(t *testing.T) {
	vals := Sample(Ramp{T0: 0, T1: 10, From: 0, To: 0.5}, 0, 10, 10)
	if len(vals) != 11 {
		t.Fatalf("len = %d", len(vals))
	}
	if vals[0] != 0 || math.Abs(vals[5]-0.25) > 1e-12 || vals[10] != 0.5 {
		t.Fatalf("samples wrong: %v", vals)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Constant(0.5), 100); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := badTrace{}
	if err := Validate(bad, 100); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

type badTrace struct{}

func (badTrace) At(t float64) float64 { return 2.0 }

func TestTraceBoundsProperty(t *testing.T) {
	r := rng.New(11)
	walk := NewRandomWalk(r.Derive(0), 500, 1, 0.5, 0.2, 0.1)
	burst := NewMarkovBurst(r.Derive(1), 500, 1, 0.2, 0.7, 30, 30)
	traces := []Trace{
		Constant(0.5),
		NewSteps(0.2, StepChange{T: 50, Load: 0.9}),
		Ramp{T0: 0, T1: 100, From: 0, To: 0.9},
		Sine{Base: 0.5, Amp: 0.6, Period: 60},
		walk,
		burst,
		Sum{walk, burst},
		Scale{walk, 3},
	}
	f := func(tRaw float64) bool {
		tt := math.Mod(math.Abs(tRaw), 500)
		if math.IsNaN(tt) {
			return true
		}
		for _, tr := range traces {
			v := tr.At(tt)
			if v < 0 || v > MaxLoad || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := NewRandomWalk(rng.New(5), 50, 2, 0.4, 0.1, 0.3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vals) != len(orig.Vals) {
		t.Fatalf("lengths differ: %d vs %d", len(got.Vals), len(orig.Vals))
	}
	if math.Abs(got.Dt-orig.Dt) > 1e-9 {
		t.Fatalf("dt differs: %v vs %v", got.Dt, orig.Dt)
	}
	for i := range got.Vals {
		if math.Abs(got.Vals[i]-orig.Vals[i]) > 1e-5 {
			t.Fatalf("value %d differs: %v vs %v", i, got.Vals[i], orig.Vals[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", "t,load\n"},
		{"badFields", "t,load\n1,2,3\n"},
		{"badTime", "t,load\nxx,0.5\n"},
		{"badLoad", "t,load\n1,yy\n"},
		{"outOfRange", "t,load\n1,1.5\n"},
		{"nonIncreasing", "t,load\n1,0.5\n1,0.4\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
