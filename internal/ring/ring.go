// Package ring provides the two allocation-free buffer shapes shared by
// the hot paths of the simulator and the live skeletons:
//
//   - FIFO: a growable ring-buffer queue, replacing the
//     `q = append(q, x)` / `q = q[1:]` idiom that leaks the backing
//     array's head and re-allocates under churn;
//   - Reorder: a sequence-indexed window that restores input order at a
//     replicated stage boundary, replacing the map[int]any pending
//     buffer (hash + boxing + rehash per item) with a direct
//     `seq - next` slot lookup.
//
// Both grow by power-of-two doubling and never shrink: a skeleton's
// steady state reuses whatever high-water capacity the warm-up reached,
// which is exactly the allocation-free property the benchmarks pin.
package ring

// FIFO is a growable ring-buffer queue. The zero value is an empty
// queue ready for use.
type FIFO[T any] struct {
	buf  []T // len(buf) is zero or a power of two
	head int // index of the front element
	n    int // number of queued elements
}

// Len returns the number of queued elements.
func (q *FIFO[T]) Len() int { return q.n }

// Push appends v to the back of the queue.
func (q *FIFO[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// Pop removes and returns the front element; ok is false on empty.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	i := q.head
	v = q.buf[i]
	var zero T
	q.buf[i] = zero // do not retain popped values
	q.head = (i + 1) & (len(q.buf) - 1)
	q.n--
	return v, true
}

// Peek returns the front element without removing it.
func (q *FIFO[T]) Peek() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// RemoveIf removes every queued element matching pred, preserving the
// relative order of the rest, and returns the removed elements in queue
// order. The removed slice is freshly allocated only when something
// matches — the empty case costs nothing.
func (q *FIFO[T]) RemoveIf(pred func(T) bool) []T {
	if q.n == 0 {
		return nil
	}
	var removed []T
	mask := len(q.buf) - 1
	kept := 0
	for i := 0; i < q.n; i++ {
		v := q.buf[(q.head+i)&mask]
		if pred(v) {
			removed = append(removed, v)
		} else {
			q.buf[(q.head+kept)&mask] = v
			kept++
		}
	}
	// Zero the vacated tail so removed values are not retained.
	var zero T
	for i := kept; i < q.n; i++ {
		q.buf[(q.head+i)&mask] = zero
	}
	q.n = kept
	return removed
}

func (q *FIFO[T]) grow() {
	newCap := len(q.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]T, newCap)
	mask := len(q.buf) - 1
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = nb
	q.head = 0
}

// Reorder restores sequence order: values tagged with consecutive
// sequence numbers starting at 0 are Put in any order, and PopNext
// yields them in order as soon as each becomes available. The zero
// value is ready for use.
type Reorder[T any] struct {
	buf  []T    // len(buf) is zero or a power of two
	occ  []bool // occupancy per slot
	next int    // the next sequence number to emit
	held int    // number of buffered (occupied) values
}

// Next returns the next sequence number PopNext will emit.
func (r *Reorder[T]) Next() int { return r.next }

// Held returns the number of values buffered out of order.
func (r *Reorder[T]) Held() int { return r.held }

// Put buffers the value with the given sequence number. It panics on a
// sequence already emitted or already buffered: under the skeleton's
// 1-for-1 discipline each sequence number appears exactly once, and a
// duplicate means the stage above violated it.
func (r *Reorder[T]) Put(seq int, v T) {
	if seq < r.next {
		panic("ring: Put of already-emitted sequence")
	}
	for len(r.buf) == 0 || seq-r.next >= len(r.buf) {
		r.grow()
	}
	i := seq & (len(r.buf) - 1)
	if r.occ[i] {
		panic("ring: duplicate sequence")
	}
	r.buf[i] = v
	r.occ[i] = true
	r.held++
}

// PopNext removes and returns the value for the next sequence number if
// it has arrived; ok is false while it is still outstanding.
func (r *Reorder[T]) PopNext() (seq int, v T, ok bool) {
	if len(r.buf) == 0 {
		return 0, v, false
	}
	i := r.next & (len(r.buf) - 1)
	if !r.occ[i] {
		return 0, v, false
	}
	seq = r.next
	v = r.buf[i]
	var zero T
	r.buf[i] = zero
	r.occ[i] = false
	r.next++
	r.held--
	return seq, v, true
}

// grow doubles the window. Buffered values re-index to seq & newMask:
// with the window anchored at next, positions are recomputable from the
// occupancy scan of the old buffer.
func (r *Reorder[T]) grow() {
	newCap := len(r.buf) * 2
	if newCap == 0 {
		newCap = 8
		r.buf = make([]T, newCap)
		r.occ = make([]bool, newCap)
		return
	}
	nb := make([]T, newCap)
	no := make([]bool, newCap)
	oldMask := len(r.buf) - 1
	for off := 0; off < len(r.buf); off++ {
		seq := r.next + off
		i := seq & oldMask
		if r.occ[i] {
			nb[seq&(newCap-1)] = r.buf[i]
			no[seq&(newCap-1)] = true
		}
	}
	r.buf = nb
	r.occ = no
}
