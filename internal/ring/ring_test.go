package ring

import (
	"math/rand"
	"testing"
)

func TestFIFOBasics(t *testing.T) {
	var q FIFO[int]
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("Peek = %v,%v", v, ok)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop %d = %v,%v", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestFIFOWrapAround(t *testing.T) {
	var q FIFO[int]
	// Interleave pushes and pops so head walks around the buffer many
	// times at every size.
	next, want := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < round%7+1; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < round%5+1 && q.Len() > 0; i++ {
			v, _ := q.Pop()
			if v != want {
				t.Fatalf("round %d: got %d want %d", round, v, want)
			}
			want++
		}
	}
	for q.Len() > 0 {
		v, _ := q.Pop()
		if v != want {
			t.Fatalf("drain: got %d want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d of %d", want, next)
	}
}

func TestFIFORemoveIf(t *testing.T) {
	var q FIFO[int]
	// Force a wrapped layout first.
	for i := 0; i < 6; i++ {
		q.Push(-1)
	}
	for i := 0; i < 6; i++ {
		q.Pop()
	}
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	removed := q.RemoveIf(func(v int) bool { return v%3 == 0 })
	if len(removed) != 4 || removed[0] != 0 || removed[1] != 3 || removed[2] != 6 || removed[3] != 9 {
		t.Fatalf("removed = %v", removed)
	}
	var rest []int
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		rest = append(rest, v)
	}
	want := []int{1, 2, 4, 5, 7, 8}
	if len(rest) != len(want) {
		t.Fatalf("rest = %v", rest)
	}
	for i := range want {
		if rest[i] != want[i] {
			t.Fatalf("rest = %v, want %v", rest, want)
		}
	}
	if q.RemoveIf(func(int) bool { return true }) != nil {
		t.Fatal("RemoveIf on empty should allocate nothing")
	}
}

func TestReorderInOrder(t *testing.T) {
	var r Reorder[string]
	if _, _, ok := r.PopNext(); ok {
		t.Fatal("PopNext on empty")
	}
	r.Put(0, "a")
	seq, v, ok := r.PopNext()
	if !ok || seq != 0 || v != "a" {
		t.Fatalf("PopNext = %d,%q,%v", seq, v, ok)
	}
}

func TestReorderShuffled(t *testing.T) {
	const n = 1000
	rnd := rand.New(rand.NewSource(1))
	perm := rnd.Perm(n)
	var r Reorder[int]
	var got []int
	for _, seq := range perm {
		r.Put(seq, seq*10)
		for {
			seq, v, ok := r.PopNext()
			if !ok {
				break
			}
			if v != seq*10 {
				t.Fatalf("seq %d carried %d", seq, v)
			}
			got = append(got, seq)
		}
	}
	if len(got) != n {
		t.Fatalf("emitted %d of %d", len(got), n)
	}
	for i, s := range got {
		if s != i {
			t.Fatalf("out of order at %d: %d", i, s)
		}
	}
	if r.Held() != 0 {
		t.Fatalf("Held = %d after drain", r.Held())
	}
}

func TestReorderGrowPreservesWindow(t *testing.T) {
	var r Reorder[int]
	// Fill a sparse window that spans several growth steps, leaving 0
	// outstanding so nothing can be emitted yet.
	for _, seq := range []int{5, 17, 40, 3, 99, 1} {
		r.Put(seq, seq)
	}
	r.Put(0, 0)
	emitted := map[int]bool{}
	for {
		seq, v, ok := r.PopNext()
		if !ok {
			break
		}
		if seq != v {
			t.Fatalf("seq %d carried %d", seq, v)
		}
		emitted[seq] = true
	}
	// 0..1 are contiguous; 3 waits on 2.
	if !emitted[0] || !emitted[1] || emitted[3] {
		t.Fatalf("emitted = %v", emitted)
	}
	if r.Next() != 2 || r.Held() != 5 {
		t.Fatalf("Next=%d Held=%d", r.Next(), r.Held())
	}
}

func TestReorderPanics(t *testing.T) {
	var r Reorder[int]
	r.Put(0, 1)
	r.PopNext()
	for name, fn := range map[string]func(){
		"stale":     func() { r.Put(0, 2) },
		"duplicate": func() { r.Put(1, 1); r.Put(1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s Put should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFIFOSteadyStateZeroAlloc(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 64; i++ {
		q.Push(i)
	}
	for i := 0; i < 64; i++ {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.Push(i)
		}
		for i := 0; i < 64; i++ {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state FIFO allocs = %v", allocs)
	}
}

func TestReorderSteadyStateZeroAlloc(t *testing.T) {
	var r Reorder[int]
	seq := 0
	allocs := testing.AllocsPerRun(100, func() {
		// Out-of-order pairs: (seq+1, seq) — the window stays at 2.
		r.Put(seq+1, 0)
		r.Put(seq, 0)
		r.PopNext()
		r.PopNext()
		seq += 2
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reorder allocs = %v", allocs)
	}
}
