package forecast

import (
	"math"

	"gridpipe/internal/stats"
)

// Adaptive runs a battery of forecasters and predicts with whichever
// currently has the lowest exponentially discounted squared one-step
// error — the NWS "forecaster of forecasters". Its defining property
// (checked in experiment T3) is that on every signal class it is close
// to the best individual member.
type Adaptive struct {
	members []Forecaster
	errs    []*stats.EWMA
	primed  []bool
}

// NewAdaptive returns an adaptive forecaster over the given members.
// errorAlpha controls how fast past accuracy is forgotten (0.1 is a
// reasonable default). It panics with no members.
func NewAdaptive(errorAlpha float64, members ...Forecaster) *Adaptive {
	if len(members) == 0 {
		panic("forecast: NewAdaptive with no members")
	}
	a := &Adaptive{members: members}
	a.errs = make([]*stats.EWMA, len(members))
	a.primed = make([]bool, len(members))
	for i := range a.errs {
		a.errs[i] = stats.NewEWMA(errorAlpha)
	}
	return a
}

// NewDefaultBattery returns an Adaptive over the standard battery used
// throughout the experiments: persistence, cumulative mean, sliding
// mean/median, exponential smoothing, and AR(1).
func NewDefaultBattery() *Adaptive {
	return NewAdaptive(0.1,
		NewLastValue(),
		NewRunningMean(),
		NewSlidingMean(10),
		NewSlidingMedian(10),
		NewExpSmooth(0.3),
		NewAR1(20),
	)
}

// Name implements Forecaster.
func (a *Adaptive) Name() string { return "adaptive" }

// Observe implements Forecaster: each member is first scored on its
// standing prediction of v, then updated with v.
func (a *Adaptive) Observe(v float64) {
	for i, m := range a.members {
		p := m.Predict()
		if !math.IsNaN(p) {
			e := p - v
			a.errs[i].Add(e * e)
			a.primed[i] = true
		}
		m.Observe(v)
	}
}

// bestIndex returns the index of the member with the lowest discounted
// error, or -1 before any member has been scored. Predict and Best
// share this one selection path.
func (a *Adaptive) bestIndex() int {
	best := -1
	bestErr := math.Inf(1)
	for i := range a.members {
		if !a.primed[i] {
			continue
		}
		if e := a.errs[i].Value(); e < bestErr {
			bestErr = e
			best = i
		}
	}
	return best
}

// Predict implements Forecaster.
func (a *Adaptive) Predict() float64 {
	best := a.bestIndex()
	if best < 0 {
		// No member has been scored yet; fall back to any member that
		// can predict at all.
		for _, m := range a.members {
			if p := m.Predict(); !math.IsNaN(p) {
				return p
			}
		}
		return math.NaN()
	}
	return a.members[best].Predict()
}

// Best returns the name of the member currently trusted, or "" before
// any scoring.
func (a *Adaptive) Best() string {
	best := a.bestIndex()
	if best < 0 {
		return ""
	}
	return a.members[best].Name()
}

// Evaluation is the accuracy record of one forecaster on one signal.
type Evaluation struct {
	Name     string
	MSE, MAE float64
	N        int
}

// Evaluate replays the series through a fresh forecaster built by
// mk and scores its one-step-ahead predictions. The first prediction is
// naturally skipped (nothing observed yet).
func Evaluate(mk func() Forecaster, series []float64) Evaluation {
	f := mk()
	var preds, actuals []float64
	for _, v := range series {
		p := f.Predict()
		if !math.IsNaN(p) {
			preds = append(preds, p)
			actuals = append(actuals, v)
		}
		f.Observe(v)
	}
	return Evaluation{
		Name: f.Name(),
		MSE:  stats.MSE(preds, actuals),
		MAE:  stats.MAE(preds, actuals),
		N:    len(preds),
	}
}
