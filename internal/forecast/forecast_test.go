package forecast

import (
	"math"
	"testing"

	"gridpipe/internal/rng"
	"gridpipe/internal/trace"
)

func TestLastValue(t *testing.T) {
	f := NewLastValue()
	if !math.IsNaN(f.Predict()) {
		t.Fatal("unprimed should be NaN")
	}
	f.Observe(3)
	f.Observe(7)
	if f.Predict() != 7 {
		t.Fatalf("Predict = %v", f.Predict())
	}
}

func TestRunningMean(t *testing.T) {
	f := NewRunningMean()
	if !math.IsNaN(f.Predict()) {
		t.Fatal("unprimed should be NaN")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		f.Observe(v)
	}
	if f.Predict() != 2.5 {
		t.Fatalf("Predict = %v", f.Predict())
	}
}

func TestSlidingMean(t *testing.T) {
	f := NewSlidingMean(3)
	for _, v := range []float64{10, 1, 2, 3} {
		f.Observe(v)
	}
	if f.Predict() != 2 {
		t.Fatalf("Predict = %v (window should have dropped 10)", f.Predict())
	}
}

func TestSlidingMedianRobustToSpikes(t *testing.T) {
	f := NewSlidingMedian(5)
	for _, v := range []float64{1, 1, 100, 1, 1} {
		f.Observe(v)
	}
	if f.Predict() != 1 {
		t.Fatalf("median = %v, want 1", f.Predict())
	}
	// Even-sized window averages the middle pair.
	g := NewSlidingMedian(4)
	for _, v := range []float64{1, 2, 3, 4} {
		g.Observe(v)
	}
	if g.Predict() != 2.5 {
		t.Fatalf("even median = %v, want 2.5", g.Predict())
	}
	if !math.IsNaN(NewSlidingMedian(3).Predict()) {
		t.Fatal("empty median should be NaN")
	}
}

func TestExpSmooth(t *testing.T) {
	f := NewExpSmooth(0.5)
	f.Observe(0)
	f.Observe(10)
	if f.Predict() != 5 {
		t.Fatalf("Predict = %v", f.Predict())
	}
}

func TestAR1OnMeanRevertingSignal(t *testing.T) {
	// x_{t+1} = 0.5 + 0.8(x_t - 0.5): AR1 should learn phi≈0.8 and beat
	// persistence on the next step after a deviation.
	f := NewAR1(50)
	x := 0.9
	for i := 0; i < 100; i++ {
		f.Observe(x)
		x = 0.5 + 0.8*(x-0.5)
	}
	p := f.Predict()
	want := 0.5 + 0.8*( /*last observed*/ 0.5+(0.9-0.5)*math.Pow(0.8, 99)-0.5)
	if math.Abs(p-want) > 0.05 {
		t.Fatalf("AR1 predict = %v, want ~%v", p, want)
	}
}

func TestAR1ShortHistoryFallsBackToLast(t *testing.T) {
	f := NewAR1(10)
	if !math.IsNaN(f.Predict()) {
		t.Fatal("empty AR1 should be NaN")
	}
	f.Observe(4)
	if f.Predict() != 4 {
		t.Fatalf("1-sample AR1 = %v, want 4", f.Predict())
	}
}

func TestAR1ConstantSignalStable(t *testing.T) {
	f := NewAR1(10)
	for i := 0; i < 20; i++ {
		f.Observe(0.5)
	}
	if math.Abs(f.Predict()-0.5) > 1e-9 {
		t.Fatalf("AR1 on constant = %v", f.Predict())
	}
}

func TestAR1PanicsOnTinyWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAR1(2)
}

func TestAdaptivePicksGoodMemberOnConstant(t *testing.T) {
	a := NewDefaultBattery()
	for i := 0; i < 50; i++ {
		a.Observe(0.4)
	}
	if got := a.Predict(); math.Abs(got-0.4) > 1e-6 {
		t.Fatalf("adaptive on constant = %v", got)
	}
	if a.Best() == "" {
		t.Fatal("Best should be set after scoring")
	}
}

func TestAdaptiveTracksStep(t *testing.T) {
	// After a step, persistence adapts instantly while the cumulative
	// mean lags; adaptive must switch away from the stale mean.
	a := NewDefaultBattery()
	for i := 0; i < 50; i++ {
		a.Observe(0.1)
	}
	for i := 0; i < 50; i++ {
		a.Observe(0.9)
	}
	if got := a.Predict(); math.Abs(got-0.9) > 0.1 {
		t.Fatalf("adaptive after step = %v, want ~0.9", got)
	}
}

func TestAdaptiveUnprimed(t *testing.T) {
	a := NewDefaultBattery()
	if !math.IsNaN(a.Predict()) || a.Best() != "" {
		t.Fatal("unprimed adaptive should be NaN with no Best")
	}
	a.Observe(1)
	// After one observation members can predict but none scored yet;
	// Predict should still return something sensible via fallback.
	if math.IsNaN(a.Predict()) {
		t.Fatal("fallback prediction missing")
	}
}

func TestAdaptivePanicsWithNoMembers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdaptive(0.1)
}

func TestEvaluate(t *testing.T) {
	series := []float64{1, 1, 1, 1, 1}
	ev := Evaluate(func() Forecaster { return NewLastValue() }, series)
	if ev.MSE != 0 || ev.MAE != 0 {
		t.Fatalf("persistence on constant should be perfect: %+v", ev)
	}
	if ev.N != 4 {
		t.Fatalf("N = %d, want 4 (first step unpredictable)", ev.N)
	}
}

// The NWS property: on every signal class, the adaptive forecaster's
// MSE is within a small factor of the best battery member's MSE.
func TestAdaptiveNeverMuchWorseThanBest(t *testing.T) {
	r := rng.New(99)
	signals := map[string][]float64{
		"constant": trace.Sample(trace.Constant(0.4), 0, 300, 300),
		"step":     trace.Sample(trace.NewSteps(0.2, trace.StepChange{T: 150, Load: 0.7}), 0, 300, 300),
		"sine":     trace.Sample(trace.Sine{Base: 0.5, Amp: 0.3, Period: 60}, 0, 300, 300),
		"walk":     trace.Sample(trace.NewRandomWalk(r.Derive(1), 300, 1, 0.4, 0.05, 0.2), 0, 300, 300),
		"burst":    trace.Sample(trace.NewMarkovBurst(r.Derive(2), 300, 1, 0.1, 0.6, 30, 10), 0, 300, 300),
	}
	makers := []func() Forecaster{
		func() Forecaster { return NewLastValue() },
		func() Forecaster { return NewRunningMean() },
		func() Forecaster { return NewSlidingMean(10) },
		func() Forecaster { return NewSlidingMedian(10) },
		func() Forecaster { return NewExpSmooth(0.3) },
		func() Forecaster { return NewAR1(20) },
	}
	for name, sig := range signals {
		best := math.Inf(1)
		for _, mk := range makers {
			if ev := Evaluate(mk, sig); ev.MSE < best {
				best = ev.MSE
			}
		}
		adaptive := Evaluate(func() Forecaster { return NewDefaultBattery() }, sig)
		// Allow a generous factor plus an absolute floor for
		// near-zero-error signals.
		if adaptive.MSE > 3*best+1e-6 {
			t.Errorf("%s: adaptive MSE %v vs best member %v", name, adaptive.MSE, best)
		}
	}
}

func TestForecasterNames(t *testing.T) {
	want := map[string]Forecaster{
		"last":      NewLastValue(),
		"mean":      NewRunningMean(),
		"swmean":    NewSlidingMean(5),
		"swmedian":  NewSlidingMedian(5),
		"expsmooth": NewExpSmooth(0.5),
		"ar1":       NewAR1(5),
		"adaptive":  NewDefaultBattery(),
	}
	for name, f := range want {
		if f.Name() != name {
			t.Errorf("Name() = %q, want %q", f.Name(), name)
		}
	}
}
