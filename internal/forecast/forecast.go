// Package forecast implements the resource-performance forecasters the
// adaptivity engine consumes. The battery mirrors the Network Weather
// Service approach: run several cheap predictors in parallel, track
// each one's one-step-ahead error, and at any instant trust the one
// that has been most accurate recently.
package forecast

import (
	"math"
	"sort"

	"gridpipe/internal/stats"
)

// Forecaster consumes a series of measurements one at a time and
// predicts the next value. Predict returns NaN until the forecaster has
// seen enough samples.
type Forecaster interface {
	// Name identifies the forecaster in experiment tables.
	Name() string
	// Observe feeds one measurement.
	Observe(v float64)
	// Predict returns the forecast of the next measurement.
	Predict() float64
}

// LastValue predicts the most recent observation (the persistence
// forecaster; hard to beat on slowly varying load).
type LastValue struct {
	v    float64
	seen bool
}

// NewLastValue returns a persistence forecaster.
func NewLastValue() *LastValue { return &LastValue{} }

// Name implements Forecaster.
func (l *LastValue) Name() string { return "last" }

// Observe implements Forecaster.
func (l *LastValue) Observe(v float64) { l.v, l.seen = v, true }

// Predict implements Forecaster.
func (l *LastValue) Predict() float64 {
	if !l.seen {
		return math.NaN()
	}
	return l.v
}

// RunningMean predicts the mean of all observations so far.
type RunningMean struct {
	o stats.Online
}

// NewRunningMean returns a cumulative-mean forecaster.
func NewRunningMean() *RunningMean { return &RunningMean{} }

// Name implements Forecaster.
func (r *RunningMean) Name() string { return "mean" }

// Observe implements Forecaster.
func (r *RunningMean) Observe(v float64) { r.o.Add(v) }

// Predict implements Forecaster.
func (r *RunningMean) Predict() float64 { return r.o.Mean() }

// SlidingMean predicts the mean of the last w observations.
type SlidingMean struct {
	ring *stats.Ring
	w    int
}

// NewSlidingMean returns a sliding-window mean forecaster of width w.
func NewSlidingMean(w int) *SlidingMean {
	return &SlidingMean{ring: stats.NewRing(w), w: w}
}

// Name implements Forecaster.
func (s *SlidingMean) Name() string { return "swmean" }

// Observe implements Forecaster.
func (s *SlidingMean) Observe(v float64) { s.ring.Add(v) }

// Predict implements Forecaster.
func (s *SlidingMean) Predict() float64 { return s.ring.Mean() }

// SlidingMedian predicts the median of the last w observations; robust
// to the spikes typical of shared-node load measurements.
type SlidingMedian struct {
	ring *stats.Ring
}

// NewSlidingMedian returns a sliding-window median forecaster of width
// w.
func NewSlidingMedian(w int) *SlidingMedian {
	return &SlidingMedian{ring: stats.NewRing(w)}
}

// Name implements Forecaster.
func (s *SlidingMedian) Name() string { return "swmedian" }

// Observe implements Forecaster.
func (s *SlidingMedian) Observe(v float64) { s.ring.Add(v) }

// Predict implements Forecaster.
func (s *SlidingMedian) Predict() float64 {
	vals := s.ring.Values()
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// ExpSmooth predicts an exponentially smoothed value.
type ExpSmooth struct {
	e *stats.EWMA
}

// NewExpSmooth returns an exponential-smoothing forecaster with factor
// alpha in (0, 1].
func NewExpSmooth(alpha float64) *ExpSmooth {
	return &ExpSmooth{e: stats.NewEWMA(alpha)}
}

// Name implements Forecaster.
func (e *ExpSmooth) Name() string { return "expsmooth" }

// Observe implements Forecaster.
func (e *ExpSmooth) Observe(v float64) { e.e.Add(v) }

// Predict implements Forecaster.
func (e *ExpSmooth) Predict() float64 { return e.e.Value() }

// AR1 fits a first-order autoregressive model x_{t+1} = μ + φ(x_t - μ)
// over a sliding window, capturing the mean reversion of random-walk
// load.
type AR1 struct {
	ring *stats.Ring
}

// NewAR1 returns an AR(1) forecaster fitted over a window of width w
// (w >= 3).
func NewAR1(w int) *AR1 {
	if w < 3 {
		panic("forecast: AR1 window must be >= 3")
	}
	return &AR1{ring: stats.NewRing(w)}
}

// Name implements Forecaster.
func (a *AR1) Name() string { return "ar1" }

// Observe implements Forecaster.
func (a *AR1) Observe(v float64) { a.ring.Add(v) }

// Predict implements Forecaster.
func (a *AR1) Predict() float64 {
	xs := a.ring.Values()
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n < 3 {
		return xs[n-1]
	}
	mean := stats.Mean(xs)
	var num, den float64
	for i := 0; i+1 < n; i++ {
		num += (xs[i] - mean) * (xs[i+1] - mean)
		den += (xs[i] - mean) * (xs[i] - mean)
	}
	phi := 0.0
	if den > 1e-12 {
		phi = num / den
	}
	// Clamp to the stable region; an explosive fit on a short noisy
	// window would otherwise launch predictions off the chart.
	if phi > 0.999 {
		phi = 0.999
	}
	if phi < -0.999 {
		phi = -0.999
	}
	return mean + phi*(xs[n-1]-mean)
}
