package monitor

import (
	"math"
	"testing"

	"gridpipe/internal/forecast"
	"gridpipe/internal/grid"
	"gridpipe/internal/trace"
)

func TestStageMonitorServiceAndThroughput(t *testing.T) {
	m := NewStageMonitor(8)
	if !math.IsNaN(m.MeanService()) || !math.IsNaN(m.Throughput()) {
		t.Fatal("fresh monitor should report NaN")
	}
	// Departures every 2 s with 1.5 s of service.
	for i := 1; i <= 10; i++ {
		m.RecordService(1.5, float64(i)*2)
	}
	if m.Count() != 10 {
		t.Fatalf("Count = %d", m.Count())
	}
	if got := m.MeanService(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("MeanService = %v", got)
	}
	if got := m.Throughput(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Throughput = %v, want 0.5", got)
	}
}

func TestStageMonitorWindowEviction(t *testing.T) {
	m := NewStageMonitor(4)
	for i := 0; i < 4; i++ {
		m.RecordService(10, float64(i))
	}
	for i := 4; i < 8; i++ {
		m.RecordService(2, float64(i))
	}
	if got := m.MeanService(); got != 2 {
		t.Fatalf("windowed mean = %v, want 2 (old samples evicted)", got)
	}
}

func TestStageMonitorReset(t *testing.T) {
	m := NewStageMonitor(4)
	m.RecordService(1, 1)
	m.RecordTransfer(0.5)
	m.Reset()
	if !math.IsNaN(m.MeanService()) || !math.IsNaN(m.MeanTransfer()) {
		t.Fatal("reset should clear windows")
	}
	if m.Count() != 1 {
		t.Fatal("reset should keep lifetime count")
	}
}

func TestMonitorCompletionsAndRecentThroughput(t *testing.T) {
	m := New(3, 0)
	if m.NumStages() != 3 {
		t.Fatalf("NumStages = %d", m.NumStages())
	}
	for i := 1; i <= 20; i++ {
		m.RecordCompletion(float64(i))
	}
	if m.Done() != 20 {
		t.Fatalf("Done = %d", m.Done())
	}
	// Items at t=11..20 within window 10 ending at t=20.
	if got := m.RecentThroughput(10, 20); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("RecentThroughput = %v, want 1.0", got)
	}
	if !math.IsNaN(m.RecentThroughput(5, 100)) {
		t.Fatal("stale window should be NaN")
	}
}

func TestBottleneckAndImbalance(t *testing.T) {
	m := New(3, 0)
	if i, v := m.Bottleneck(); i != -1 || !math.IsNaN(v) {
		t.Fatal("empty monitor bottleneck should be (-1, NaN)")
	}
	if !math.IsNaN(m.Imbalance()) {
		t.Fatal("empty imbalance should be NaN")
	}
	m.Stage(0).RecordService(1, 1)
	m.Stage(1).RecordService(4, 1)
	m.Stage(2).RecordService(2, 1)
	if i, v := m.Bottleneck(); i != 1 || v != 4 {
		t.Fatalf("Bottleneck = %d, %v", i, v)
	}
	if got := m.Imbalance(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Imbalance = %v, want 4", got)
	}
}

func TestImbalanceNeedsTwoStages(t *testing.T) {
	m := New(2, 0)
	m.Stage(0).RecordService(1, 1)
	if !math.IsNaN(m.Imbalance()) {
		t.Fatal("one sampled stage should give NaN imbalance")
	}
}

func TestResetStages(t *testing.T) {
	m := New(2, 0)
	m.Stage(0).RecordService(1, 1)
	m.Stage(1).RecordService(2, 1)
	m.ResetStages()
	if i, _ := m.Bottleneck(); i != -1 {
		t.Fatal("ResetStages should clear windows")
	}
}

func TestNewPanicsOnZeroStages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 8)
}

func TestRecentThroughputPanicsOnBadWindow(t *testing.T) {
	m := New(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.RecentThroughput(0, 10)
}

func TestNodeSensor(t *testing.T) {
	n := &grid.Node{Name: "n", Speed: 1, Cores: 1,
		Load: trace.NewSteps(0.2, trace.StepChange{T: 10, Load: 0.8})}
	s := NewNodeSensor(n, nil)
	if s.Node() != n {
		t.Fatal("Node() wrong")
	}
	if !math.IsNaN(s.LastLoad()) {
		t.Fatal("unsampled sensor should be NaN")
	}
	if s.PredictedLoad() != 0 {
		t.Fatal("unsampled prediction should fall back to 0")
	}
	for ti := 0; ti < 10; ti++ {
		s.Sample(float64(ti))
	}
	if s.LastLoad() != 0.2 {
		t.Fatalf("LastLoad = %v", s.LastLoad())
	}
	if got := s.PredictedLoad(); math.Abs(got-0.2) > 0.05 {
		t.Fatalf("PredictedLoad = %v, want ~0.2", got)
	}
	// After the step the forecast should move to the new level.
	for ti := 10; ti < 30; ti++ {
		s.Sample(float64(ti))
	}
	if got := s.PredictedLoad(); math.Abs(got-0.8) > 0.1 {
		t.Fatalf("PredictedLoad after step = %v, want ~0.8", got)
	}
}

func TestNodeSensorIdleNode(t *testing.T) {
	s := NewNodeSensor(&grid.Node{Name: "idle", Speed: 1, Cores: 1}, forecast.NewLastValue())
	s.Sample(5)
	if s.LastLoad() != 0 || s.PredictedLoad() != 0 {
		t.Fatal("idle node should sense 0")
	}
}

func TestPredictedLoadClamped(t *testing.T) {
	// A forecaster that overshoots must be clamped to [0, 0.99].
	s := NewNodeSensor(&grid.Node{Name: "x", Speed: 1, Cores: 1}, overshoot{})
	s.Sample(0)
	if got := s.PredictedLoad(); got != 0.99 {
		t.Fatalf("PredictedLoad = %v, want clamp 0.99", got)
	}
}

type overshoot struct{}

func (overshoot) Name() string     { return "overshoot" }
func (overshoot) Observe(float64)  {}
func (overshoot) Predict() float64 { return 5 }
