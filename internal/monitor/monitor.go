// Package monitor implements the run-time instrumentation the
// adaptivity engine consumes: per-stage service and transfer samples,
// pipeline throughput probes, and node-load sensors feeding the
// forecaster battery.
//
// In a deployed grid the sensors would be NWS daemons; in this
// reproduction they sample the simulated load traces at the same
// cadence a daemon would measure, so the adaptation logic sees exactly
// the kind of signal it was designed for.
package monitor

import (
	"fmt"
	"math"

	"gridpipe/internal/forecast"
	"gridpipe/internal/grid"
	"gridpipe/internal/stats"
)

// DefaultWindow is the number of recent samples retained per stage.
const DefaultWindow = 32

// StageMonitor accumulates timing observations for one pipeline stage.
type StageMonitor struct {
	service  *stats.Ring
	transfer *stats.Ring
	count    int
	lastDone float64
	// exponentially smoothed inter-departure time; its inverse is the
	// stage's observed throughput.
	interDep *stats.EWMA
}

// NewStageMonitor returns a stage monitor with the given sample window.
func NewStageMonitor(window int) *StageMonitor {
	if window <= 0 {
		window = DefaultWindow
	}
	return &StageMonitor{
		service:  stats.NewRing(window),
		transfer: stats.NewRing(window),
		interDep: stats.NewEWMA(0.2),
		lastDone: math.NaN(),
	}
}

// RecordService notes that the stage finished processing one item at
// time now, having spent dur seconds of service.
func (m *StageMonitor) RecordService(dur, now float64) {
	m.service.Add(dur)
	m.count++
	if !math.IsNaN(m.lastDone) && now > m.lastDone {
		m.interDep.Add(now - m.lastDone)
	}
	m.lastDone = now
}

// RecordTransfer notes an inbound transfer of dur seconds.
func (m *StageMonitor) RecordTransfer(dur float64) { m.transfer.Add(dur) }

// Count returns the number of items the stage has completed.
func (m *StageMonitor) Count() int { return m.count }

// MeanService returns the windowed mean service time (NaN when no
// samples).
func (m *StageMonitor) MeanService() float64 { return m.service.Mean() }

// MeanTransfer returns the windowed mean inbound transfer time.
func (m *StageMonitor) MeanTransfer() float64 { return m.transfer.Mean() }

// Throughput returns the observed departure rate (items/s) from the
// smoothed inter-departure time, or NaN before two departures.
func (m *StageMonitor) Throughput() float64 {
	d := m.interDep.Value()
	if math.IsNaN(d) || d <= 0 {
		return math.NaN()
	}
	return 1 / d
}

// Reset clears the sample windows but keeps the lifetime count. Called
// after a remap so stale observations from the old mapping do not
// pollute decisions about the new one.
func (m *StageMonitor) Reset() {
	m.service.Reset()
	m.transfer.Reset()
	m.lastDone = math.NaN()
	m.interDep = stats.NewEWMA(0.2)
}

// Monitor aggregates per-stage monitors plus pipeline-exit events.
type Monitor struct {
	stages      []*StageMonitor
	completions []float64 // times at which items left the pipeline
}

// New returns a monitor for a pipeline of ns stages.
func New(ns, window int) *Monitor {
	if ns <= 0 {
		panic(fmt.Sprintf("monitor: New with %d stages", ns))
	}
	m := &Monitor{stages: make([]*StageMonitor, ns)}
	for i := range m.stages {
		m.stages[i] = NewStageMonitor(window)
	}
	return m
}

// NumStages returns the number of stages monitored.
func (m *Monitor) NumStages() int { return len(m.stages) }

// Stage returns the monitor of stage i.
func (m *Monitor) Stage(i int) *StageMonitor { return m.stages[i] }

// RecordCompletion notes that an item left the last stage at time now.
func (m *Monitor) RecordCompletion(now float64) {
	m.completions = append(m.completions, now)
}

// Completions returns the pipeline exit times (shared slice).
func (m *Monitor) Completions() []float64 { return m.completions }

// Done returns the number of items that left the pipeline.
func (m *Monitor) Done() int { return len(m.completions) }

// RecentThroughput returns the exit rate over the trailing window
// (items/s) at time now, or NaN when nothing completed in the window.
func (m *Monitor) RecentThroughput(window, now float64) float64 {
	if window <= 0 {
		panic("monitor: RecentThroughput with non-positive window")
	}
	// Half-open window (now-window, now]: an item exactly at the
	// window's trailing edge has aged out.
	count := 0
	for i := len(m.completions) - 1; i >= 0; i-- {
		if m.completions[i] <= now-window {
			break
		}
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return float64(count) / window
}

// Bottleneck returns the index of the stage with the largest windowed
// mean service time, and that time. Stages without samples are skipped;
// if none have samples it returns (-1, NaN).
func (m *Monitor) Bottleneck() (int, float64) {
	best, bestV := -1, math.NaN()
	for i, s := range m.stages {
		v := s.MeanService()
		if math.IsNaN(v) {
			continue
		}
		if best < 0 || v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// Imbalance returns the ratio of the largest to the smallest windowed
// mean stage service time (≥ 1), or NaN until at least two stages have
// samples. A perfectly balanced pipeline scores 1.
func (m *Monitor) Imbalance() float64 {
	min, max := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range m.stages {
		v := s.MeanService()
		if math.IsNaN(v) {
			continue
		}
		n++
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if n < 2 || min <= 0 {
		return math.NaN()
	}
	return max / min
}

// ResetStages clears every stage window (see StageMonitor.Reset).
func (m *Monitor) ResetStages() {
	for _, s := range m.stages {
		s.Reset()
	}
}

// EstimateMode selects how an Estimator (or a sensor built on one)
// turns its measurement history into the single number a decision
// uses. It is the monitoring-side mirror of the adaptive controller's
// load modes, shared by the simulated node sensors and the live stage
// sensors so the fallback glue exists exactly once.
type EstimateMode int

const (
	// EstimateLast uses the most recent measurement (0 before any).
	EstimateLast EstimateMode = iota
	// EstimatePredicted uses the forecaster battery's near-future
	// estimate, falling back to the last measurement and then to 0.
	EstimatePredicted
	// EstimateOracle uses ground truth where the sensor can see it
	// (simulated load traces); sensors without ground truth fall back
	// to EstimateLast.
	EstimateOracle
)

// Estimator wraps a forecaster with the fallback glue every estimate
// path previously duplicated: feed raw measurements in, read either
// the last value or a clamped forecast out.
type Estimator struct {
	fc   forecast.Forecaster
	last float64
}

// NewEstimator returns an estimator over the given forecaster (the
// default NWS-style battery if nil).
func NewEstimator(fc forecast.Forecaster) *Estimator {
	if fc == nil {
		fc = forecast.NewDefaultBattery()
	}
	return &Estimator{fc: fc, last: math.NaN()}
}

// Observe feeds one measurement.
func (e *Estimator) Observe(v float64) {
	e.last = v
	e.fc.Observe(v)
}

// Last returns the most recent measurement (NaN before sampling).
func (e *Estimator) Last() float64 { return e.last }

// Predicted returns the forecast of the near future clamped to
// [lo, hi], falling back to the last measurement and then to lo.
// Forecasts may overshoot slightly; the clamp keeps them physical.
func (e *Estimator) Predicted(lo, hi float64) float64 {
	p := e.fc.Predict()
	if math.IsNaN(p) {
		p = e.last
	}
	if math.IsNaN(p) {
		return lo
	}
	return math.Min(math.Max(p, lo), hi)
}

// NodeSensor periodically samples one node's background load and feeds
// a forecaster, mimicking an NWS CPU-availability sensor for that host.
type NodeSensor struct {
	node *grid.Node
	est  *Estimator
}

// NewNodeSensor returns a sensor for node backed by the given
// forecaster (the default battery if nil).
func NewNodeSensor(node *grid.Node, fc forecast.Forecaster) *NodeSensor {
	return &NodeSensor{node: node, est: NewEstimator(fc)}
}

// Node returns the sensed node.
func (s *NodeSensor) Node() *grid.Node { return s.node }

// Sample measures the node's instantaneous load at time t and feeds the
// forecaster.
func (s *NodeSensor) Sample(t float64) {
	l := 0.0
	if s.node.Load != nil {
		l = s.node.Load.At(t)
	}
	s.est.Observe(l)
}

// LastLoad returns the most recent measurement (NaN before sampling).
func (s *NodeSensor) LastLoad() float64 { return s.est.Last() }

// PredictedLoad returns the forecast of near-future load, falling back
// to the last measurement and then to 0, clamped to [0, 0.99].
func (s *NodeSensor) PredictedLoad() float64 { return s.est.Predicted(0, 0.99) }

// Estimate returns the load number the given mode decides with: the
// ground-truth trace for EstimateOracle, the clamped forecast for
// EstimatePredicted, and the last measurement (0 before any) otherwise.
// This is the one shared path the adaptive controller's per-policy
// load estimation collapsed into.
func (s *NodeSensor) Estimate(mode EstimateMode, now float64) float64 {
	switch mode {
	case EstimateOracle:
		if s.node.Load != nil {
			return s.node.Load.At(now)
		}
		return 0
	case EstimatePredicted:
		return s.PredictedLoad()
	default:
		l := s.est.Last()
		if math.IsNaN(l) {
			return 0
		}
		return l
	}
}
