package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"gridpipe/internal/workload"
)

// traceCluster builds the standard fixture for trace tests: an 8-node
// LAN grid with a FIFO-queue cluster at the given seed.
func traceCluster(t *testing.T, seed uint64) *Cluster {
	t.Helper()
	c, err := New(homGrid(t, 8), Config{Seed: seed, Admission: AdmitQueue})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// A recorded trace replayed through an identically-configured cluster
// must reproduce the generating run's Report bit-identically: per-job
// seeds derive from submit order, and the trace round-trips float64
// arrival times exactly.
func TestTraceReplayReproducesReport(t *testing.T) {
	proc := workload.NewPoisson(0.2, 17)
	mix := []workload.MixEntry{
		{App: "genome", Share: 2, Items: 20},
		{App: "image", Share: 1, Items: 15, Weight: 2},
	}
	tr, err := workload.GenerateTrace(proc, mix, 60, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) < 3 {
		t.Fatalf("trace too short to be interesting: %d events", len(tr))
	}

	run := func(tr workload.Trace) Report {
		c := traceCluster(t, 99)
		if _, err := c.SubmitTrace(tr); err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	orig := run(tr)

	// Record to JSON lines and replay the decoded trace.
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := run(back)

	if !reflect.DeepEqual(orig, replay) {
		t.Fatalf("replayed report differs from the generating run:\n orig   %+v\n replay %+v", orig, replay)
	}
}

// SubmitTrace must surface trace problems instead of half-submitting.
func TestSubmitTraceRejectsBadTrace(t *testing.T) {
	c := traceCluster(t, 1)
	if _, err := c.SubmitTrace(workload.Trace{{T: 0, App: "bogus", Items: 5}}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// Jobs arriving at the same virtual instant must admit in submit
// order: the engine breaks event-time ties by schedule sequence, so
// equal-Arrival submissions form a deterministic FIFO. Floors sized to
// the whole grid force full serialization, making admission order
// observable through Admitted times.
func TestSameTimeArrivalsAdmitInSubmitOrder(t *testing.T) {
	run := func() Report {
		c := traceCluster(t, 5)
		for _, name := range []string{"a", "b", "c", "d"} {
			spec := jobOf(name, workload.Genome(), 1, 30)
			spec.FloorNodes = 8 // each job needs every node: one at a time
			if _, err := c.Submit(spec); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	rep := run()
	if len(rep.Jobs) != 4 {
		t.Fatalf("got %d job reports", len(rep.Jobs))
	}
	for i, jr := range rep.Jobs {
		if want := []string{"a", "b", "c", "d"}[i]; jr.Name != want {
			t.Fatalf("report order: job %d is %q, want %q", i, jr.Name, want)
		}
		if jr.Done != 30 {
			t.Fatalf("%s: done=%d", jr.Name, jr.Done)
		}
		if i > 0 && rep.Jobs[i].Admitted <= rep.Jobs[i-1].Admitted {
			t.Errorf("%s admitted at %v, not after %s at %v — tie broke out of submit order",
				jr.Name, jr.Admitted, rep.Jobs[i-1].Name, rep.Jobs[i-1].Admitted)
		}
	}

	// And the whole tie-broken run is reproducible.
	if again := run(); !reflect.DeepEqual(rep, again) {
		t.Fatal("same-time-arrival run is not deterministic across repeats")
	}
}
