package cluster

import (
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

func homGrid(t *testing.T, n int) *grid.Grid {
	t.Helper()
	g, err := grid.Homogeneous(n, 1, grid.LANLink)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestArbitrateDisjointAndComplete(t *testing.T) {
	g := homGrid(t, 8)
	masks, err := Arbitrate(g, nil, []Tenant{{Weight: 1}, {Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, 8)
	total := 0
	for _, m := range masks {
		for n, ok := range m {
			if ok {
				seen[n]++
				total++
			}
		}
	}
	if total != 8 {
		t.Fatalf("assigned %d of 8 nodes", total)
	}
	for n, c := range seen {
		if c != 1 {
			t.Fatalf("node %d assigned %d times (leases must be disjoint when jobs fit)", n, c)
		}
	}
	if masks[0].Count() != 4 || masks[1].Count() != 4 {
		t.Fatalf("equal weights should split 8 nodes 4/4, got %d/%d", masks[0].Count(), masks[1].Count())
	}
}

func TestArbitrateWeights(t *testing.T) {
	g := homGrid(t, 9)
	masks, err := Arbitrate(g, nil, []Tenant{{Weight: 2}, {Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if masks[0].Count() != 6 || masks[1].Count() != 3 {
		t.Fatalf("2:1 weights over 9 nodes should split 6/3, got %d/%d", masks[0].Count(), masks[1].Count())
	}
}

func TestArbitrateFloors(t *testing.T) {
	g := homGrid(t, 6)
	masks, err := Arbitrate(g, nil, []Tenant{{Weight: 100}, {Weight: 1, Floor: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if masks[1].Count() < 2 {
		t.Fatalf("floor of 2 not honoured: tenant 1 got %d nodes", masks[1].Count())
	}
}

func TestArbitrateOversubscribed(t *testing.T) {
	g := homGrid(t, 2)
	masks, err := Arbitrate(g, nil, []Tenant{{}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range masks {
		if m.Count() < 1 {
			t.Fatalf("tenant %d got no nodes under over-subscription", i)
		}
	}
	// 3 single-node floors over 2 nodes: subscription spread 2/1.
	subs := make([]int, 2)
	for _, m := range masks {
		for n, ok := range m {
			if ok {
				subs[n]++
			}
		}
	}
	if subs[0]+subs[1] != 3 || subs[0] > 2 || subs[1] > 2 {
		t.Fatalf("expected floors spread over least-subscribed nodes, got %v", subs)
	}
}

func TestArbitrateFloorExceedsAvail(t *testing.T) {
	g := homGrid(t, 3)
	if _, err := Arbitrate(g, nil, []Tenant{{Floor: 4}}); err == nil {
		t.Fatal("floor above the grid must error, not panic or truncate")
	}
	avail := []bool{true, false, false}
	if _, err := Arbitrate(g, avail, []Tenant{{Floor: 2}}); err == nil {
		t.Fatal("floor above the available nodes must error")
	}
}

func TestArbitratePinned(t *testing.T) {
	g := homGrid(t, 4)
	pin := make(model.CapacityMask, 4)
	pin[0], pin[1] = true, true
	masks, err := Arbitrate(g, nil, []Tenant{{Pin: pin}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if !masks[0][0] || !masks[0][1] || masks[0].Count() != 2 {
		t.Fatalf("pinned lease not copied verbatim: %s", masks[0])
	}
	if masks[1][0] || masks[1][1] || masks[1].Count() != 2 {
		t.Fatalf("free tenant must get exactly the unpinned nodes, got %s", masks[1])
	}
}

func TestArbitrateAvailMask(t *testing.T) {
	g := homGrid(t, 4)
	avail := []bool{true, true, false, true}
	masks, err := Arbitrate(g, avail, []Tenant{{}})
	if err != nil {
		t.Fatal(err)
	}
	if masks[0][2] {
		t.Fatal("an unavailable node must never be leased")
	}
	if masks[0].Count() != 3 {
		t.Fatalf("expected the 3 available nodes, got %d", masks[0].Count())
	}
}
