// Adaptive cross-job arbitration: the cluster wiring of the
// substrate-agnostic adaptive.Controller (internal/adaptive, PR 4).
//
//   - Sensor: the grid's NWS-style node sensors provide per-node load
//     estimates (last/forecast/oracle, exactly as simadapt); the
//     observed signal is the weighted max-min objective over the
//     active jobs — min_j observed-throughput_j / weight_j — and the
//     "slowdown" vector is each job's degradation factor, so the
//     imbalance trigger fires on unfairness (one tenant degrading far
//     more than another), not on stage spread;
//   - Actuator: the arbiter re-divides the nodes under the current
//     load estimates, each job's mapping is re-searched inside its new
//     lease against the others' reservations, and every moved job is
//     remapped under the configured protocol;
//   - Clock: the shared engine's virtual-time ticker.
//
// Hysteresis and cooldown come from the shared controller core: a
// re-division actuates only when the predicted post-arbitration
// objective clears HysteresisGain × the current one.
package cluster

import (
	"fmt"
	"math"
	"strings"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/model"
	"gridpipe/internal/monitor"
)

// arbSub implements adaptive.Sensor and adaptive.Actuator over one
// cluster.
type arbSub struct {
	c       *Cluster
	slowBuf []float64
}

func (s *arbSub) Sample(now float64) {
	for _, ns := range s.c.sensors {
		ns.Sample(now)
	}
}

// Loads returns the per-node background-load vector the policy
// decides with, through the shared monitor.Estimate path.
func (s *arbSub) Loads(mode adaptive.LoadMode, now float64) []float64 {
	m := monitor.EstimateLast
	switch mode {
	case adaptive.LoadPredicted:
		m = monitor.EstimatePredicted
	case adaptive.LoadOracle:
		m = monitor.EstimateOracle
	}
	loads := make([]float64, len(s.c.sensors))
	for i, ns := range s.c.sensors {
		loads[i] = ns.Estimate(m, now)
	}
	return loads
}

// Throughput returns the observed fairness objective: the minimum
// weighted exit rate across active jobs, NaN while no job has signal.
func (s *arbSub) Throughput(window, now float64) float64 {
	out := math.NaN()
	for _, j := range s.c.active() {
		obs := j.ex.Monitor().RecentThroughput(window, now)
		if math.IsNaN(obs) {
			continue
		}
		w := obs / j.spec.NormWeight()
		if math.IsNaN(out) || w < out {
			out = w
		}
	}
	return out
}

// Slowdowns reports each active job's degradation factor — predicted
// over observed throughput — so the controller's imbalance trigger
// reads cross-job unfairness.
func (s *arbSub) Slowdowns() []float64 {
	actives := s.c.active()
	if cap(s.slowBuf) < len(actives) {
		s.slowBuf = make([]float64, len(actives))
	}
	s.slowBuf = s.slowBuf[:len(actives)]
	for i, j := range actives {
		obs := j.ex.Monitor().RecentThroughput(s.c.cfg.ThroughputWindow, s.c.eng.Now())
		if math.IsNaN(obs) || obs <= 0 || j.pred.Throughput <= 0 {
			s.slowBuf[i] = math.NaN()
			continue
		}
		s.slowBuf[i] = j.pred.Throughput / obs
	}
	return s.slowBuf
}

// Expected rates the current leases under the load estimates: the
// weighted max-min objective of every active job's current mapping.
// Evaluations run through one pooled scratch — this fires every tick,
// and only the throughput scalar is kept.
func (s *arbSub) Expected(loads []float64) (reference, hysteresis float64) {
	obj := math.NaN()
	ps := model.AcquirePredictScratch()
	defer model.ReleasePredictScratch(ps)
	for _, j := range s.c.active() {
		pred, err := model.PredictInto(s.c.g, j.spec.Spec, j.ex.Mapping(), loads, ps)
		if err != nil {
			panic(fmt.Sprintf("cluster: predict job %q: %v", j.spec.Name, err))
		}
		w := pred.Throughput / j.spec.NormWeight()
		if math.IsNaN(obj) || w < obj {
			obj = w
		}
	}
	return obj, obj
}

// arbPlan is one proposed cross-job re-division.
type arbPlan struct {
	jobs     []*Job
	masks    []model.CapacityMask
	mappings []model.Mapping
	preds    []model.Prediction
}

// leases renders a plan (or the current state) for the event log.
type leases string

func (l leases) String() string { return string(l) }

func renderLeases(jobs []*Job, mappings []model.Mapping) leases {
	var b strings.Builder
	for i, j := range jobs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%s", j.spec.Name, mappings[i])
	}
	return leases(b.String())
}

// Propose re-divides the grid under the load estimates: new leases
// from the arbiter, new mappings searched inside them against the
// other tenants' reservations — via the incremental divider, so
// tenants whose inputs are unchanged replay their memoized search —
// and the predicted post-arbitration objective.
func (s *arbSub) Propose(loads []float64) (*adaptive.Proposal, bool) {
	c := s.c
	actives := c.active()
	if len(actives) == 0 {
		return nil, false
	}
	tenants, out := c.roundArgs(actives)
	if err := c.div.Round(nil, tenants, loads, out); err != nil {
		panic(fmt.Sprintf("cluster: arbitrate: %v", err))
	}
	objective := math.NaN()
	changed := false
	cur := make([]model.Mapping, len(actives))
	for i, a := range actives {
		cur[i] = a.ex.Mapping()
		if !out[i].Mapping.Equal(cur[i]) {
			changed = true
		}
		w := out[i].Pred.Throughput / a.spec.NormWeight()
		if math.IsNaN(objective) || w < objective {
			objective = w
		}
	}
	if !changed {
		return nil, true
	}
	// The plan owns everything it carries across the Propose→Apply gap:
	// actives and the placement masks alias reused round buffers.
	plan := &arbPlan{
		jobs:     append([]*Job(nil), actives...),
		masks:    make([]model.CapacityMask, len(actives)),
		mappings: make([]model.Mapping, len(actives)),
		preds:    make([]model.Prediction, len(actives)),
	}
	for i := range actives {
		plan.masks[i] = append(model.CapacityMask(nil), out[i].Mask...)
		plan.mappings[i] = out[i].Mapping
		plan.preds[i] = out[i].Pred
	}
	return &adaptive.Proposal{
		From:      renderLeases(actives, cur),
		To:        renderLeases(plan.jobs, plan.mappings),
		Predicted: objective,
		Ref:       plan,
	}, true
}

// Apply actuates a plan: every job whose mapping moved is remapped and
// its lease updated.
func (s *arbSub) Apply(p *adaptive.Proposal) adaptive.Actuation {
	plan := p.Ref.(*arbPlan)
	var act adaptive.Actuation
	s.c.arbitrations++
	for i, j := range plan.jobs {
		if j.state != JobRunning {
			continue // finished between Propose and Apply (same tick: cannot happen, but stay safe)
		}
		j.setMask(plan.masks[i])
		if !plan.mappings[i].Equal(j.ex.Mapping()) {
			st, err := j.ex.Remap(plan.mappings[i], s.c.cfg.Protocol)
			if err != nil {
				panic(fmt.Sprintf("cluster: job %q remap: %v", j.spec.Name, err))
			}
			act.Moved += st.Moved
			act.Killed += st.Killed
			act.RedoneWork += st.RedoneWork
			if st.Changed {
				act.Changed = true
				j.remaps++
			}
		}
		j.mapping = plan.mappings[i]
		j.pred = plan.preds[i]
	}
	return act
}
