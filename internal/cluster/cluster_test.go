package cluster

import (
	"fmt"
	"math"
	"testing"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/workload"
)

func jobOf(name string, app workload.App, arrival float64, items int) model.JobSpec {
	return model.JobSpec{
		Name:    name,
		Spec:    app.Spec,
		Arrival: arrival,
		Items:   items,
		CV:      app.CV,
	}
}

func TestSingleJobDegenerate(t *testing.T) {
	g := homGrid(t, 4)
	c, err := New(g, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(jobOf("solo", workload.Genome(), 0, 100)); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	jr := rep.Jobs[0]
	if jr.Done != 100 || jr.Lost != 0 {
		t.Fatalf("done=%d lost=%d, want 100/0", jr.Done, jr.Lost)
	}
	if jr.Waited != 0 {
		t.Fatalf("a sole tenant must admit immediately, waited %v", jr.Waited)
	}
	if rep.Jain != 1 {
		t.Fatalf("one job is perfectly fair by definition, Jain=%v", rep.Jain)
	}
	if jr.Makespan <= 0 || rep.Makespan != jr.Finished {
		t.Fatalf("bad makespans: job=%v cluster=%v finished=%v", jr.Makespan, rep.Makespan, jr.Finished)
	}
}

func TestTwoJobsStaggeredArbitration(t *testing.T) {
	g := homGrid(t, 8)
	c, err := New(g, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(jobOf("early", workload.Genome(), 0, 600)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(jobOf("late", workload.Image(), 5, 300)); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Done != 600 || rep.Jobs[1].Done != 300 {
		t.Fatalf("done=%d/%d, want 600/300", rep.Jobs[0].Done, rep.Jobs[1].Done)
	}
	// Arrival of the second job and the first finish both re-divide.
	if rep.Arbitrations < 2 {
		t.Fatalf("expected ≥2 arbitration rounds (arrival + finish), got %d", rep.Arbitrations)
	}
	// The early job's lease must shrink when the late one arrives: its
	// executor sees at least one remap over its lifetime.
	if rep.Jobs[0].Remaps == 0 {
		t.Fatal("the early job's lease never moved despite a second tenant arriving")
	}
	if math.IsNaN(rep.Jain) || rep.Jain <= 0 || rep.Jain > 1 {
		t.Fatalf("bad Jain index %v", rep.Jain)
	}
}

// TestSameSeedDeterminism is the multi-job determinism gate: two runs
// of the same cluster configuration must produce identical reports,
// because every job's randomness is a keyed sub-stream of the root
// seed rather than a draw from shared state.
func TestSameSeedDeterminism(t *testing.T) {
	run := func() string {
		g := homGrid(t, 8)
		c, err := New(g, Config{Seed: 3, Policy: adaptive.PolicyReactive})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(jobOf("a", workload.Genome(), 0, 120)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(jobOf("b", workload.Video(), 15, 80)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(jobOf("c", workload.Image(), 30, 100)); err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", rep)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed cluster runs diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestAdmissionQueue(t *testing.T) {
	g := homGrid(t, 8)
	c, err := New(g, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	big := jobOf("big", workload.Genome(), 0, 120)
	big.FloorNodes = 5
	if _, err := c.Submit(big); err != nil {
		t.Fatal(err)
	}
	second := jobOf("second", workload.Genome(), 1, 60)
	second.FloorNodes = 5
	if _, err := c.Submit(second); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	jr := rep.Jobs[1]
	if jr.State != JobDone {
		t.Fatalf("queued job never ran: %s", jr.State)
	}
	if jr.Waited <= 0 {
		t.Fatal("two floor-5 jobs cannot share 8 nodes; the second must wait in the queue")
	}
	if jr.Admitted < rep.Jobs[0].Finished {
		t.Fatalf("second admitted at %v before first finished at %v", jr.Admitted, rep.Jobs[0].Finished)
	}
}

func TestAdmissionReject(t *testing.T) {
	g := homGrid(t, 8)
	c, err := New(g, Config{Seed: 5, Admission: AdmitReject})
	if err != nil {
		t.Fatal(err)
	}
	big := jobOf("big", workload.Genome(), 0, 120)
	big.FloorNodes = 5
	if _, err := c.Submit(big); err != nil {
		t.Fatal(err)
	}
	second := jobOf("second", workload.Genome(), 1, 60)
	second.FloorNodes = 5
	if _, err := c.Submit(second); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[1].State != JobRejected {
		t.Fatalf("expected rejection, got %s", rep.Jobs[1].State)
	}
	if rep.Jobs[0].Done != 120 {
		t.Fatalf("the admitted job must still finish, done=%d", rep.Jobs[0].Done)
	}
}

func TestFloorExceedsGridErrorsAtSubmit(t *testing.T) {
	g := homGrid(t, 4)
	c, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := jobOf("bad", workload.Genome(), 0, 10)
	bad.FloorNodes = 5
	if _, err := c.Submit(bad); err == nil {
		t.Fatal("a floor above the whole grid must be a clean Submit error")
	}
}

// TestOverAdmissionContention pins the collapse mechanism: admitting
// every job at once onto overlapping leases slows each one down via
// proportional sharing, where queued admission keeps per-job service
// near nominal.
func TestOverAdmissionContention(t *testing.T) {
	mk := func(adm Admission) Report {
		g := homGrid(t, 2)
		c, err := New(g, Config{Seed: 9, Admission: adm})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			js := jobOf(fmt.Sprintf("j%d", i), workload.Balanced(2, 0.2, 0), 0, 40)
			js.FloorNodes = 2
			if _, err := c.Submit(js); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	over := mk(AdmitAll)
	queued := mk(AdmitQueue)
	for _, jr := range over.Jobs {
		if jr.Done != 40 {
			t.Fatalf("over-admitted job %s done=%d, want 40", jr.Name, jr.Done)
		}
	}
	// Over-admission shares 2 nodes among 4 jobs from t=0: every job's
	// individual makespan stretches far beyond its queued-admission
	// counterpart even though total completion time is similar.
	overMean, queuedMean := 0.0, 0.0
	for i := range over.Jobs {
		overMean += over.Jobs[i].Makespan
		queuedMean += queued.Jobs[i].Makespan
	}
	if overMean <= 1.5*queuedMean {
		t.Fatalf("expected over-admission to stretch per-job makespans (over %v vs queued %v)",
			overMean/4, queuedMean/4)
	}
}

// TestAdmissionPinnedPlusFloor pins the review finding: a pinned
// tenant occupies its nodes, so a floor that only fits the full grid
// must queue (not panic the arbiter) while the pinned job runs.
func TestAdmissionPinnedPlusFloor(t *testing.T) {
	g := homGrid(t, 4)
	c, err := New(g, Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	pinnedJob := jobOf("pinned", workload.Genome(), 0, 120)
	if _, err := c.SubmitPinned(pinnedJob, []grid.NodeID{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	floored := jobOf("floored", workload.Genome(), 1, 60)
	floored.FloorNodes = 2
	if _, err := c.Submit(floored); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run() // must not panic: 2 > the 1 unpinned node
	if err != nil {
		t.Fatal(err)
	}
	jr := rep.Jobs[1]
	if jr.State != JobDone {
		t.Fatalf("floored job state=%s, want done", jr.State)
	}
	if jr.Waited <= 0 || jr.Admitted < rep.Jobs[0].Finished {
		t.Fatalf("floored job must wait for the pinned lease to free (waited=%v admitted=%v pinned finished=%v)",
			jr.Waited, jr.Admitted, rep.Jobs[0].Finished)
	}
}

// TestAdmissionQueueFIFO pins the review finding: a small job arriving
// behind a blocked queue head must wait its turn, not jump the queue —
// otherwise a stream of small jobs starves the big one.
func TestAdmissionQueueFIFO(t *testing.T) {
	g := homGrid(t, 4)
	c, err := New(g, Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	running := jobOf("running", workload.Genome(), 0, 120)
	running.FloorNodes = 3
	if _, err := c.Submit(running); err != nil {
		t.Fatal(err)
	}
	head := jobOf("head", workload.Genome(), 1, 60)
	head.FloorNodes = 3
	if _, err := c.Submit(head); err != nil {
		t.Fatal(err)
	}
	small := jobOf("small", workload.Genome(), 2, 30)
	small.FloorNodes = 1
	if _, err := c.Submit(small); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	headR, smallR := rep.Jobs[1], rep.Jobs[2]
	if smallR.Admitted < headR.Admitted {
		t.Fatalf("small (arrived %v, admitted %v) jumped the queue past head (arrived %v, admitted %v)",
			smallR.Arrival, smallR.Admitted, headR.Arrival, headR.Admitted)
	}
}

// TestOverAdmissionPinnedWholeGrid pins the review finding: under
// AdmitAll, an unpinned job arriving while a pinned tenant holds the
// whole grid must queue cleanly (zero pool), not panic the arbiter.
func TestOverAdmissionPinnedWholeGrid(t *testing.T) {
	g := homGrid(t, 4)
	c, err := New(g, Config{Seed: 21, Admission: AdmitAll})
	if err != nil {
		t.Fatal(err)
	}
	pinnedJob := jobOf("pinned", workload.Genome(), 0, 80)
	if _, err := c.SubmitPinned(pinnedJob, []grid.NodeID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(jobOf("free", workload.Genome(), 1, 40)); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run() // must not panic on a zero unpinned pool
	if err != nil {
		t.Fatal(err)
	}
	jr := rep.Jobs[1]
	if jr.State != JobDone || jr.Waited <= 0 {
		t.Fatalf("free job must wait for the pinned grid and then finish: state=%s waited=%v", jr.State, jr.Waited)
	}
}
