// Incremental cross-job arbitration. A Divider runs the cluster's
// division round — arbiter leases, then per-tenant mapping search
// against the other tenants' reservations — through persistent state
// that memoizes each tenant's last search:
//
//   - the arbiter re-divides through reusable buffers (Arbiter.Divide);
//   - a tenant whose lease mask, base-load vector, and upstream
//     reservation ledger are all bitwise unchanged since its last
//     search gets its cached placement back, and the ledger charge its
//     mapping imposes is replayed from a cached utilisation vector
//     (Reservations.AddUse) without touching the analytic model;
//   - only tenants whose inputs actually changed re-search, through
//     one long-lived sched.Scratch, so a steady-state round where
//     nothing moved costs a handful of float compares per tenant and
//     zero allocations.
//
// The replay is exact, not approximate: every search strategy is a
// deterministic pure function of (spec, lease, residual loads), the
// residual loads are a pure function of (base loads, upstream ledger),
// and the cached charge vector holds the very floats Reservations.Add
// would recompute. A cache hit therefore yields bit-identical leases,
// mappings, predictions and ledger state to re-running the search —
// the F12/F13 goldens cannot tell the difference — and any comparison
// doubt (NaN, length drift) misses the cache and recomputes.
package cluster

import (
	"fmt"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sched"
)

// DividerTenant is one tenant of an incremental division round: the
// arbiter-facing claim plus what the mapping search needs.
type DividerTenant struct {
	// ID is the tenant's stable identity across rounds — the memo key.
	// The cluster uses the job index; IDs must be small non-negative
	// integers (the state table is ID-indexed).
	ID int
	// Name labels the tenant in error messages.
	Name string
	Tenant
	Spec     model.PipelineSpec
	Searcher sched.Searcher
}

// Placement is one tenant's outcome of a division round. Mask aliases
// divider-owned storage rewritten by the next Round — copy to retain.
// Mapping and Pred are owned by the divider's memo but never mutated
// in place (a re-search replaces them wholesale), so they may be
// retained and shared.
type Placement struct {
	Mask    model.CapacityMask
	Mapping model.Mapping
	Pred    model.Prediction
}

// DividerStats counts the incremental arbiter's work.
type DividerStats struct {
	// Rounds is the number of division rounds run.
	Rounds int
	// Searches is the number of tenant mapping searches executed.
	Searches int
	// Cached is the number of tenant searches skipped by replaying a
	// memoized placement. Rounds×tenants = Searches + Cached.
	Cached int
}

// tenantState is one tenant's memoized search: the inputs it was keyed
// on (lease, base loads, upstream ledger) and the outputs to replay.
type tenantState struct {
	valid    bool
	loadsNil bool
	mask     model.CapacityMask
	loads    []float64 // base loads at search time
	used     []float64 // reservation ledger before this tenant's search
	use      []float64 // ledger charge of the cached mapping (UseOf)
	mapping  model.Mapping
	pred     model.Prediction
}

// matches reports whether the memoized search's inputs are bitwise
// identical to this round's.
func (st *tenantState) matches(mask model.CapacityMask, base []float64, resv *sched.Reservations) bool {
	if len(st.mask) != len(mask) {
		return false
	}
	for i, b := range mask {
		if st.mask[i] != b {
			return false
		}
	}
	if st.loadsNil != (base == nil) || len(st.loads) != len(base) {
		return false
	}
	for i, v := range base {
		if st.loads[i] != v {
			return false
		}
	}
	return resv.UsedEquals(st.used)
}

// Divider is the reusable incremental-arbitration context for one
// grid. Not safe for concurrent use.
type Divider struct {
	g           *grid.Grid
	maxReplicas int
	arb         Arbiter
	resv        *sched.Reservations
	sc          *sched.Scratch
	states      []*tenantState
	tenants     []Tenant
	masks       []model.CapacityMask
	resid       []float64
	stats       DividerStats
}

// NewDivider returns a divider over the grid. maxReplicas bounds
// per-stage replication width in the improvement pass (≤0 = grid
// size), matching cluster Config.MaxReplicas semantics.
func NewDivider(g *grid.Grid, maxReplicas int) *Divider {
	return &Divider{
		g:           g,
		maxReplicas: maxReplicas,
		resv:        sched.NewReservations(g),
		sc:          sched.NewScratch(),
	}
}

// Stats returns the divider's cumulative work counters.
func (d *Divider) Stats() DividerStats { return d.stats }

// Round runs one division: arbiter leases over the available nodes,
// then each tenant's mapping searched (or replayed from the memo)
// inside its lease against the residual capacity of the tenants placed
// before it, in tenant order. out (len(tenants)) receives one
// Placement per tenant. A steady-state round — same tenants, leases
// and loads as last time — performs no model evaluations and no
// allocations.
func (d *Divider) Round(avail []bool, tenants []DividerTenant, base []float64, out []Placement) error {
	if len(out) != len(tenants) {
		return fmt.Errorf("cluster: %d placements for %d tenants", len(out), len(tenants))
	}
	d.stats.Rounds++
	np := d.g.NumNodes()
	if cap(d.tenants) < len(tenants) {
		d.tenants = make([]Tenant, 0, len(tenants))
	}
	d.tenants = d.tenants[:0]
	for _, t := range tenants {
		d.tenants = append(d.tenants, t.Tenant)
	}
	for len(d.masks) < len(tenants) {
		d.masks = append(d.masks, make(model.CapacityMask, np))
	}
	masks := d.masks[:len(tenants)]
	if err := d.arb.Divide(d.g, avail, d.tenants, masks); err != nil {
		return err
	}
	d.resv.Reset()
	for i, t := range tenants {
		st := d.state(t.ID)
		if st.valid && st.matches(masks[i], base, d.resv) {
			d.resv.AddUse(st.use)
			d.stats.Cached++
		} else {
			if err := d.search(st, t, masks[i], base); err != nil {
				return err
			}
			d.stats.Searches++
		}
		out[i] = Placement{Mask: masks[i], Mapping: st.mapping, Pred: st.pred}
	}
	return nil
}

// state returns (growing on demand) the memo slot for a tenant ID.
func (d *Divider) state(id int) *tenantState {
	for len(d.states) <= id {
		d.states = append(d.states, nil)
	}
	if d.states[id] == nil {
		d.states[id] = &tenantState{}
	}
	return d.states[id]
}

// search runs one tenant's mapping search and refreshes its memo: the
// exact SearchResidual → ImproveResidual → Add sequence the cluster
// always ran, over the divider's scratch and with the inputs/outputs
// recorded for later replay.
func (d *Divider) search(st *tenantState, t DividerTenant, mask model.CapacityMask, base []float64) error {
	st.valid = false
	st.used = d.resv.SnapshotInto(st.used)
	d.resid = d.resv.ResidualInto(d.resid, base)
	m, _, err := sched.SearchWith(d.sc, t.Searcher, d.g, t.Spec, d.resid, mask)
	if err != nil {
		return fmt.Errorf("cluster: job %q search: %w", t.Name, err)
	}
	// The improvement pass clones the scratch-aliased mapping and
	// detaches its prediction, so the memo owns what it stores.
	m, pred, err := sched.ImproveWithReplicationAvail(d.g, t.Spec, m, d.resid, d.maxReplicas, mask)
	if err != nil {
		return fmt.Errorf("cluster: job %q replicate: %w", t.Name, err)
	}
	st.use, err = d.resv.UseOf(st.use, t.Spec, m, base)
	if err != nil {
		return fmt.Errorf("cluster: job %q reserve: %w", t.Name, err)
	}
	d.resv.AddUse(st.use)
	st.mask = append(st.mask[:0], mask...)
	st.loadsNil = base == nil
	st.loads = append(st.loads[:0], base...)
	st.mapping = m
	st.pred = pred
	st.valid = true
	return nil
}
