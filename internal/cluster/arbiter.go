// The arbiter divides a grid's nodes among the cluster's active jobs:
// weighted max-min fairness over node capacity (speed × cores), with
// per-job admission floors. It is a pure function of (grid,
// availability, tenants) so every arbitration round is deterministic.
//
// When the active jobs fit the grid (the common case) the leases are
// disjoint: contention between tenants is a scheduling decision, not
// an accident. When the cluster is over-subscribed — more floors than
// nodes, the F13 over-admission scenario — floors are still honoured
// by placing jobs on the least-subscribed nodes, and the executors'
// proportional capacity sharing (exec.NodeShares) models the resulting
// collapse.
package cluster

import (
	"fmt"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// Tenant is one job's claim in an arbitration round.
type Tenant struct {
	// Weight is the fairness weight (≤0 means 1).
	Weight float64
	// Floor is the minimum node count (≤0 means 1).
	Floor int
	// Pin, when non-nil, fixes the tenant's lease: the arbiter copies
	// it verbatim and excludes the pinned nodes from the shared pool —
	// the static-partition baseline of experiment F12.
	Pin model.CapacityMask
}

func (t Tenant) weight() float64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

func (t Tenant) floor() int {
	if t.Floor <= 0 {
		return 1
	}
	return t.Floor
}

// Arbiter is the reusable arbitration context: it owns the pool,
// subscription and assignment buffers one division round needs, so a
// steady-state caller (the incremental Divider) re-divides the grid
// without allocating. The zero value is ready. Not safe for concurrent
// use.
type Arbiter struct {
	pinned   []bool
	pool     []int
	subs     []int
	assigned []float64
}

// Divide assigns every available node to the tenants under weighted
// max-min fairness, filling the caller-owned masks (one per tenant,
// each covering the whole grid) in place. avail[n] false excludes node
// n (churned out or reserved); nil admits every node. It errors when
// any tenant's floor exceeds the available node count — admission
// control is expected to have held such a job back. Divide is
// Arbitrate over reused storage: same inputs, bit-identical masks.
func (ab *Arbiter) Divide(g *grid.Grid, avail []bool, tenants []Tenant, masks []model.CapacityMask) error {
	np := g.NumNodes()
	if len(masks) != len(tenants) {
		return fmt.Errorf("cluster: %d lease masks for %d tenants", len(masks), len(tenants))
	}
	for _, m := range masks {
		if len(m) != np {
			return fmt.Errorf("cluster: lease mask covers %d nodes, grid has %d", len(m), np)
		}
		for n := range m {
			m[n] = false
		}
	}
	if len(tenants) == 0 {
		return nil
	}

	// The shared pool: available nodes not pinned to anyone, in
	// capacity-descending order (ties by ID, so the order is total).
	if cap(ab.pinned) < np {
		ab.pinned = make([]bool, np)
	}
	pinned := ab.pinned[:np]
	for n := range pinned {
		pinned[n] = false
	}
	for ti, t := range tenants {
		if t.Pin == nil {
			continue
		}
		for n := 0; n < np && n < len(t.Pin); n++ {
			if t.Pin[n] {
				masks[ti][n] = true
				pinned[n] = true
			}
		}
	}
	capOf := func(n int) float64 {
		node := g.Node(grid.NodeID(n))
		return node.Speed * float64(node.Cores)
	}
	if cap(ab.pool) < np {
		ab.pool = make([]int, 0, np)
	}
	pool := ab.pool[:0]
	for n := 0; n < np; n++ {
		if (avail == nil || avail[n]) && !pinned[n] {
			pool = append(pool, n)
		}
	}
	ab.pool = pool
	// Insertion sort: the key (capacity desc, ID asc) is a strict total
	// order over distinct node IDs, so the permutation matches the
	// sort.SliceStable call this replaced exactly.
	for i := 1; i < len(pool); i++ {
		for j := i; j > 0; j-- {
			ca, cb := capOf(pool[j]), capOf(pool[j-1])
			if ca < cb || (ca == cb && pool[j] > pool[j-1]) {
				break
			}
			pool[j], pool[j-1] = pool[j-1], pool[j]
		}
	}

	// Per-node tenant count (for oversubscribed floors) and per-tenant
	// assigned capacity (the max-min objective).
	if cap(ab.subs) < np {
		ab.subs = make([]int, np)
	}
	subs := ab.subs[:np]
	for n := range subs {
		subs[n] = 0
	}
	if cap(ab.assigned) < len(tenants) {
		ab.assigned = make([]float64, len(tenants))
	}
	assigned := ab.assigned[:len(tenants)]
	for ti := range assigned {
		assigned[ti] = 0
	}
	give := func(ti, n int) {
		masks[ti][n] = true
		subs[n]++
		assigned[ti] += capOf(n)
	}

	// Floor pass, tenants in order: each takes its floor from the
	// least-subscribed nodes (fresh nodes first, then the highest-
	// capacity ones), so floors stay disjoint while nodes last and
	// overlap gracefully when they do not.
	for ti, t := range tenants {
		if t.Pin != nil {
			continue
		}
		if t.floor() > len(pool) {
			return fmt.Errorf("cluster: tenant %d floor of %d nodes exceeds the %d available", ti, t.floor(), len(pool))
		}
		for masks[ti].Count() < t.floor() {
			best := -1
			for _, n := range pool {
				if masks[ti][n] {
					continue
				}
				if best < 0 || subs[n] < subs[best] {
					best = n
				}
			}
			give(ti, best)
		}
	}

	// Spread pass: every still-free node goes to the most deprived
	// tenant — the one with the lowest assigned capacity per unit
	// weight (ties to the earlier tenant). Pinned tenants do not grow.
	for _, n := range pool {
		if subs[n] > 0 {
			continue
		}
		best := -1
		var bestShare float64
		for ti, t := range tenants {
			if t.Pin != nil {
				continue
			}
			share := assigned[ti] / t.weight()
			if best < 0 || share < bestShare {
				best, bestShare = ti, share
			}
		}
		if best < 0 {
			break // every tenant is pinned
		}
		give(best, n)
	}
	return nil
}

// Arbitrate assigns every available node to the active tenants and
// returns one freshly allocated capacity mask per tenant (in tenant
// order): Divide for callers outside a steady-state loop.
func Arbitrate(g *grid.Grid, avail []bool, tenants []Tenant) ([]model.CapacityMask, error) {
	np := g.NumNodes()
	masks := make([]model.CapacityMask, len(tenants))
	for i := range masks {
		masks[i] = make(model.CapacityMask, np)
	}
	var ab Arbiter
	if err := ab.Divide(g, avail, tenants, masks); err != nil {
		return nil, err
	}
	return masks, nil
}
