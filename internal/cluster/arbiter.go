// The arbiter divides a grid's nodes among the cluster's active jobs:
// weighted max-min fairness over node capacity (speed × cores), with
// per-job admission floors. It is a pure function of (grid,
// availability, tenants) so every arbitration round is deterministic.
//
// When the active jobs fit the grid (the common case) the leases are
// disjoint: contention between tenants is a scheduling decision, not
// an accident. When the cluster is over-subscribed — more floors than
// nodes, the F13 over-admission scenario — floors are still honoured
// by placing jobs on the least-subscribed nodes, and the executors'
// proportional capacity sharing (exec.NodeShares) models the resulting
// collapse.
package cluster

import (
	"fmt"
	"sort"

	"gridpipe/internal/grid"
	"gridpipe/internal/model"
)

// Tenant is one job's claim in an arbitration round.
type Tenant struct {
	// Weight is the fairness weight (≤0 means 1).
	Weight float64
	// Floor is the minimum node count (≤0 means 1).
	Floor int
	// Pin, when non-nil, fixes the tenant's lease: the arbiter copies
	// it verbatim and excludes the pinned nodes from the shared pool —
	// the static-partition baseline of experiment F12.
	Pin model.CapacityMask
}

func (t Tenant) weight() float64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

func (t Tenant) floor() int {
	if t.Floor <= 0 {
		return 1
	}
	return t.Floor
}

// Arbitrate assigns every available node to the active tenants under
// weighted max-min fairness and returns one capacity mask per tenant
// (in tenant order). avail[n] false excludes node n (churned out or
// reserved); nil admits every node. It errors when any tenant's floor
// exceeds the available node count — admission control is expected to
// have held such a job back.
func Arbitrate(g *grid.Grid, avail []bool, tenants []Tenant) ([]model.CapacityMask, error) {
	np := g.NumNodes()
	masks := make([]model.CapacityMask, len(tenants))
	for i := range masks {
		masks[i] = make(model.CapacityMask, np)
	}
	if len(tenants) == 0 {
		return masks, nil
	}

	// The shared pool: available nodes not pinned to anyone, in
	// capacity-descending order (ties by ID, so the order is total).
	pinned := make([]bool, np)
	for ti, t := range tenants {
		if t.Pin == nil {
			continue
		}
		for n := 0; n < np && n < len(t.Pin); n++ {
			if t.Pin[n] {
				masks[ti][n] = true
				pinned[n] = true
			}
		}
	}
	cap := func(n int) float64 {
		node := g.Node(grid.NodeID(n))
		return node.Speed * float64(node.Cores)
	}
	var pool []int
	for n := 0; n < np; n++ {
		if (avail == nil || avail[n]) && !pinned[n] {
			pool = append(pool, n)
		}
	}
	sort.SliceStable(pool, func(a, b int) bool {
		ca, cb := cap(pool[a]), cap(pool[b])
		if ca != cb {
			return ca > cb
		}
		return pool[a] < pool[b]
	})

	// Per-node tenant count (for oversubscribed floors) and per-tenant
	// assigned capacity (the max-min objective).
	subs := make([]int, np)
	assigned := make([]float64, len(tenants))
	give := func(ti, n int) {
		masks[ti][n] = true
		subs[n]++
		assigned[ti] += cap(n)
	}

	// Floor pass, tenants in order: each takes its floor from the
	// least-subscribed nodes (fresh nodes first, then the highest-
	// capacity ones), so floors stay disjoint while nodes last and
	// overlap gracefully when they do not.
	for ti, t := range tenants {
		if t.Pin != nil {
			continue
		}
		if t.floor() > len(pool) {
			return nil, fmt.Errorf("cluster: tenant %d floor of %d nodes exceeds the %d available", ti, t.floor(), len(pool))
		}
		for masks[ti].Count() < t.floor() {
			best := -1
			for _, n := range pool {
				if masks[ti][n] {
					continue
				}
				if best < 0 || subs[n] < subs[best] {
					best = n
				}
			}
			give(ti, best)
		}
	}

	// Spread pass: every still-free node goes to the most deprived
	// tenant — the one with the lowest assigned capacity per unit
	// weight (ties to the earlier tenant). Pinned tenants do not grow.
	for _, n := range pool {
		if subs[n] > 0 {
			continue
		}
		best := -1
		var bestShare float64
		for ti, t := range tenants {
			if t.Pin != nil {
				continue
			}
			share := assigned[ti] / t.weight()
			if best < 0 || share < bestShare {
				best, bestShare = ti, share
			}
		}
		if best < 0 {
			break // every tenant is pinned
		}
		give(best, n)
	}
	return masks, nil
}
