package cluster

import "gridpipe/internal/workload"

// SubmitTrace replays an open-loop traffic trace into the cluster: one
// Submit per trace event, in trace order, each at its recorded virtual
// arrival time. Because per-job seeds derive from submit order
// (rng.SeedFor(cfg.Seed, index)), replaying a recorded trace into a
// cluster with the same Config reproduces the generating run's Report
// bit-identically. Returns the submitted jobs in trace order; on error
// the already-submitted prefix remains registered (the cluster has not
// started, so the caller can simply discard it).
func (c *Cluster) SubmitTrace(tr workload.Trace) ([]*Job, error) {
	specs, err := tr.JobSpecs()
	if err != nil {
		return nil, err
	}
	jobs := make([]*Job, 0, len(specs))
	for _, spec := range specs {
		j, err := c.Submit(spec)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}
