package cluster

// Tenant-seam partitioned execution: the cluster layer's wiring of the
// partitioned simulation core (sim.ParallelEngine). Lease boundaries
// are the natural partition seams of a multi-tenant run — tenants on
// disjoint pinned leases interact only through arbiter notifications,
// which ride cross-partition links — so each tenant group advances on
// its own event calendar in parallel, synchronized conservatively at
// windows bounded by the minimum cross-lease link latency.
//
// The partitioned runner deliberately covers the static corner of the
// cluster: pinned disjoint leases, no admission queue, no adaptive
// re-arbitration, no churn (all of which couple tenants mid-window
// and belong on the single-engine Cluster). That corner is exactly the
// shape of the large scaling experiments — N independent tenants over
// one big grid — where a single-threaded calendar burns wall-clock on
// one core. Reports are bit-identical for every partition and worker
// count: each tenant's event stream is computed by its own executor
// from its own seeded streams, untouched by window placement.

import (
	"fmt"
	"runtime"

	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/rng"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
	"gridpipe/internal/workload"
)

// PinnedJob is one tenant of a partitioned run: a job statically
// leased to an explicit, disjoint node set.
type PinnedJob struct {
	Spec  model.JobSpec
	Nodes []grid.NodeID
}

// PartitionedOptions tunes RunPartitioned.
type PartitionedOptions struct {
	// Parts is the partition count. Tenants are dealt round-robin into
	// partitions, so Parts is capped at the tenant count. 0 picks
	// min(NumCPU, tenants); 1 is the single-threaded golden path
	// (bit-identical to any other partition count, just slower).
	Parts int
	// Workers bounds the OS-level parallelism (0 = GOMAXPROCS). Any
	// value produces the same report; only wall-clock changes.
	Workers int
	// MaxInFlight is the per-job CONWIP window (0 = 4× stage count).
	MaxInFlight int
	// MaxReplicas bounds per-stage replication width (0 = lease size).
	MaxReplicas int
	// Seed is the root seed; every job derives its own keyed
	// sub-streams exactly as the single-engine Cluster does.
	Seed uint64
}

// pjob is one tenant's run-time state.
type pjob struct {
	run     *partitionedRun
	id      int
	spec    model.JobSpec
	mask    model.CapacityMask
	mapping model.Mapping
	shard   *sim.Shard
	ex      *exec.Executor

	done, lost int
	finishT    float64
	finished   bool
}

// partitionedRun is the coordinator state shared by the tenants.
type partitionedRun struct {
	eng     *sim.ParallelEngine
	beacon  float64 // finish-notification latency (>= engine lookahead)
	beacons int     // finish notifications received by partition 0
}

// RunPartitioned executes the pinned tenants to completion over the
// grid on a partitioned engine and returns the usual cluster Report
// (Arbitrations counts the finish notifications the coordinator
// partition received). The report is identical for every Parts and
// Workers choice; Parts=1 is the single-threaded reference.
func RunPartitioned(g *grid.Grid, jobs []PinnedJob, opt PartitionedOptions) (Report, error) {
	if g == nil {
		return Report{}, fmt.Errorf("cluster: nil grid")
	}
	if len(jobs) == 0 {
		return Report{}, fmt.Errorf("cluster: no jobs")
	}
	if g.Churn() != nil {
		return Report{}, fmt.Errorf("cluster: partitioned run does not support churn (node lifecycle couples tenants mid-window; use Cluster)")
	}
	parts := opt.Parts
	if parts == 0 {
		parts = runtime.NumCPU()
	}
	if parts < 0 {
		return Report{}, fmt.Errorf("cluster: invalid partition count %d", opt.Parts)
	}
	if parts > len(jobs) {
		parts = len(jobs)
	}

	// Validate specs and build the disjoint leases.
	np := g.NumNodes()
	leases := make([]model.CapacityMask, len(jobs))
	owner := make([]int, np)
	for n := range owner {
		owner[n] = -1
	}
	for i, pj := range jobs {
		spec := pj.Spec
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("job%d", i)
			jobs[i].Spec.Name = spec.Name
		}
		if err := spec.Validate(np); err != nil {
			return Report{}, err
		}
		if len(pj.Nodes) == 0 {
			return Report{}, fmt.Errorf("cluster: pinned job %q with no nodes", spec.Name)
		}
		mask := make(model.CapacityMask, np)
		for _, n := range pj.Nodes {
			if int(n) < 0 || int(n) >= np {
				return Report{}, fmt.Errorf("cluster: pinned job %q names invalid node %d", spec.Name, n)
			}
			if o := owner[n]; o >= 0 {
				return Report{}, fmt.Errorf("cluster: node %d leased to both %q and %q (partitioned leases must be disjoint)",
					n, jobs[o].Spec.Name, spec.Name)
			}
			owner[n] = i
			mask[n] = true
		}
		leases[i] = mask
	}

	// Tenant-seam partition plan: tenants deal round-robin into
	// partitions, the lookahead is the minimum link latency crossing a
	// partition boundary.
	partMasks := make([]model.CapacityMask, parts)
	for p := range partMasks {
		partMasks[p] = make(model.CapacityMask, np)
	}
	for i := range jobs {
		p := i % parts
		for n, ok := range leases[i] {
			if ok {
				partMasks[p][n] = true
			}
		}
	}
	plan, err := exec.PlanByMasks(g, partMasks)
	if err != nil {
		return Report{}, err
	}
	if parts > 1 && plan.Lookahead <= 0 {
		return Report{}, fmt.Errorf("cluster: zero cross-partition link latency leaves no conservative lookahead; repartition or fix the grid's links")
	}

	run := &partitionedRun{eng: sim.NewParallel(parts, plan.Lookahead), beacon: plan.Lookahead}
	run.eng.SetWorkers(opt.Workers)

	pjobs := make([]*pjob, len(jobs))
	for i := range jobs {
		spec := jobs[i].Spec
		seed := rng.SeedFor(opt.Seed, uint64(i))
		m, _, err := sched.SearchAvailable(sched.LocalSearch{Seed: rng.SeedFor(seed, 1)}, g, spec.Spec, nil, leases[i])
		if err != nil {
			return Report{}, fmt.Errorf("cluster: job %q search: %w", spec.Name, err)
		}
		m, _, err = sched.ImproveWithReplicationAvail(g, spec.Spec, m, nil, opt.MaxReplicas, leases[i])
		if err != nil {
			return Report{}, fmt.Errorf("cluster: job %q replicate: %w", spec.Name, err)
		}
		j := &pjob{run: run, id: i, spec: spec, mask: leases[i], mapping: m, shard: run.eng.Part(i % parts)}
		app := workload.App{Name: spec.Name, Spec: spec.Spec, CV: spec.CV}
		maxIF := opt.MaxInFlight
		if maxIF <= 0 {
			maxIF = 4 * spec.Spec.NumStages()
		}
		ex, err := exec.New(&j.shard.Engine, g, spec.Spec, m, exec.Options{
			MaxInFlight: maxIF,
			TotalItems:  spec.Items,
			WorkSampler: app.Sampler(rng.SeedFor(seed, 2)),
			Seed:        rng.SeedFor(seed, 3),
		})
		if err != nil {
			return Report{}, fmt.Errorf("cluster: job %q executor: %w", spec.Name, err)
		}
		j.ex = ex
		ex.SetItemHooks(
			func(int) { j.done++; j.checkFinished() },
			func(int) { j.lost++; j.checkFinished() },
		)
		j.shard.AtArg(spec.Arrival, pstartFire, j)
		pjobs[i] = j
	}

	run.eng.Run()

	rep := Report{Arbitrations: run.beacons}
	var shares []float64
	for _, j := range pjobs {
		if !j.finished {
			return Report{}, fmt.Errorf("cluster: job %q finished %d+%d of %d items (deadlock?)",
				j.spec.Name, j.done, j.lost, j.spec.Items)
		}
		jr := JobReport{
			Name:           j.spec.Name,
			State:          JobDone,
			Weight:         j.spec.NormWeight(),
			Arrival:        j.spec.Arrival,
			Admitted:       j.spec.Arrival, // pinned leases: no admission queue
			Finished:       j.finishT,
			Done:           j.done,
			Lost:           j.lost,
			Makespan:       j.finishT - j.spec.Arrival,
			InitialMapping: j.mapping.String(),
			FinalMapping:   j.ex.Mapping().String(),
		}
		if jr.Makespan > 0 {
			jr.Throughput = float64(j.done) / jr.Makespan
		}
		if lats := j.ex.Latencies(); len(lats) > 0 {
			sum := 0.0
			for _, l := range lats {
				sum += l
			}
			jr.MeanLatency = sum / float64(len(lats))
		}
		if j.finishT > rep.Makespan {
			rep.Makespan = j.finishT
		}
		shares = append(shares, jr.Throughput/jr.Weight)
		rep.Jobs = append(rep.Jobs, jr)
	}
	rep.MinWeightedShare, rep.Jain = fairness(shares)
	return rep, nil
}

// pstartFire starts a tenant's executor at its arrival time; the
// shared trampoline keeps arrivals allocation-free.
func pstartFire(arg any) {
	j := arg.(*pjob)
	j.ex.Start()
}

// checkFinished records the tenant's completion and notifies the
// coordinator partition — the cross-partition "finish re-lease" event
// of the partitioned protocol, delivered at the next window edge.
func (j *pjob) checkFinished() {
	if j.finished || j.done+j.lost < j.spec.Items {
		return
	}
	j.finished = true
	j.finishT = j.shard.Now()
	j.shard.Send(0, j.run.beacon, pfinishFire, j)
}

// pfinishFire runs on the coordinator partition: it tallies finish
// notifications (surfaced as Report.Arbitrations).
func pfinishFire(arg any) {
	j := arg.(*pjob)
	j.run.beacons++
}
