// Package cluster is the multi-tenant layer: it owns one simulated
// grid and runs N concurrent jobs over it in a single virtual-time
// engine. Where the single-job stack lets a pipeline own the grid, the
// cluster inverts the relationship — each job leases capacity:
//
//   - admission control queues (or rejects) a job while the grid's
//     residual capacity cannot meet every admitted job's node floor;
//   - the arbiter (arbiter.go) divides the nodes among admitted jobs
//     under weighted max-min fairness, re-dividing on every arrival
//     and finish;
//   - each job's mapping is searched inside its lease against the
//     residual capacity the other tenants leave (sched.Reservations),
//     and executed by its own exec.Executor on the shared engine, with
//     cross-tenant contention modelled as proportional capacity
//     sharing (exec.NodeShares);
//   - an adaptive arbitration policy (adapt.go) — the cluster wiring
//     of the substrate-agnostic adaptive.Controller — senses per-job
//     degradation and re-divides nodes across jobs under the same
//     hysteresis/cooldown machinery the single-job controllers use.
//
// A cluster with one job is the degenerate one-tenant case; every
// multi-tenant branch in the executor is disabled when only one
// executor is attached-and-running, so the single-job experiments are
// unaffected (their goldens are byte-identical).
package cluster

import (
	"fmt"
	"math"
	"strings"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/monitor"
	"gridpipe/internal/rng"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
	"gridpipe/internal/workload"
)

// Admission selects what happens to a job the residual capacity
// cannot place.
type Admission int

const (
	// AdmitQueue holds arriving jobs in FIFO order until every
	// admitted job's floor still fits (the default).
	AdmitQueue Admission = iota
	// AdmitReject turns the capacity check into a hard rejection.
	AdmitReject
	// AdmitAll admits every job immediately, floors regardless — the
	// over-admission baseline of experiment F13: leases overlap and
	// proportional sharing splits the nodes ever thinner.
	AdmitAll
)

// Config tunes a cluster.
type Config struct {
	// Policy drives the adaptive arbitration loop (static = arbitrate
	// only on arrivals/finishes; oracle uses ground-truth loads).
	Policy adaptive.Policy
	// Interval is the arbitration tick in virtual seconds (default 1).
	Interval float64
	// DegradationFactor, ImbalanceThreshold, HysteresisGain, Cooldown,
	// and ThroughputWindow tune the shared trigger machinery
	// (adaptive.Config semantics; the imbalance trigger reads per-job
	// degradation spread — unfairness — instead of stage spread).
	DegradationFactor  float64
	ImbalanceThreshold float64
	HysteresisGain     float64
	Cooldown           float64
	ThroughputWindow   float64
	// Protocol is how in-flight work is handled on cross-job remaps.
	Protocol exec.RemapProtocol
	// MaxReplicas bounds per-stage replication width (0 = lease size).
	MaxReplicas int
	// MaxInFlight is the per-job CONWIP window (0 = 4× stage count).
	MaxInFlight int
	// Admission selects the admission-control mode.
	Admission Admission
	// Seed is the root seed; every job derives its own keyed
	// sub-streams (rng.SeedFor), so the run is deterministic regardless
	// of job interleaving.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 1
	}
	if c.ThroughputWindow <= 0 {
		c.ThroughputWindow = 5 * c.Interval
	}
}

// JobState is one job's position in the admission lifecycle.
type JobState int

const (
	// JobPending: submitted, arrival not yet reached.
	JobPending JobState = iota
	// JobQueued: arrived, waiting for capacity.
	JobQueued
	// JobRunning: admitted, executing.
	JobRunning
	// JobDone: every item completed (or lost).
	JobDone
	// JobRejected: refused by admission control.
	JobRejected
)

// String renders the state name.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobRejected:
		return "rejected"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is one tenant of the cluster.
type Job struct {
	id      int
	cluster *Cluster
	spec    model.JobSpec
	pin     model.CapacityMask
	seed    uint64

	state    JobState
	mask     model.CapacityMask
	mapping  model.Mapping
	pred     model.Prediction
	ex       *exec.Executor
	searcher sched.Searcher

	done, lost       int
	queuedAt, admitT float64
	finishT          float64
	remaps           int
	initialMapping   string
}

// Name returns the job's label.
func (j *Job) Name() string { return j.spec.Name }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState { return j.state }

// Cluster owns one grid and multiplexes jobs over it.
type Cluster struct {
	g       *grid.Grid
	eng     *sim.Engine
	cfg     Config
	shares  *exec.NodeShares
	sensors []*monitor.NodeSensor

	jobs  []*Job
	queue []*Job // FIFO admission queue

	ctrl         *adaptive.Controller
	arbitrations int
	started      bool

	// Incremental-arbitration machinery: the memoizing divider plus the
	// reused round buffers (active set, tenant list, placements, fits'
	// pinned scan) that keep steady-state rounds allocation-free.
	div        *Divider
	activeBuf  []*Job
	tenantBuf  []DividerTenant
	placeBuf   []Placement
	fitsPinned []bool
}

// New builds a cluster over the grid. Submit jobs, then Run.
func New(g *grid.Grid, cfg Config) (*Cluster, error) {
	if g == nil {
		return nil, fmt.Errorf("cluster: nil grid")
	}
	cfg.fillDefaults()
	c := &Cluster{
		g:       g,
		eng:     &sim.Engine{},
		cfg:     cfg,
		shares:  exec.NewNodeShares(g),
		sensors: make([]*monitor.NodeSensor, g.NumNodes()),
	}
	for i := range c.sensors {
		c.sensors[i] = monitor.NewNodeSensor(g.Node(grid.NodeID(i)), nil)
	}
	c.div = NewDivider(g, cfg.MaxReplicas)
	return c, nil
}

// DividerStats reports the incremental arbiter's work counters: how
// many division rounds ran and how many per-tenant searches were
// replayed from the memo instead of re-executed.
func (c *Cluster) DividerStats() DividerStats { return c.div.Stats() }

// Submit registers a job; its arrival fires at spec.Arrival in virtual
// time. Must be called before Run. A floor that exceeds the whole grid
// is a clean admission error here, not a queue-forever.
func (c *Cluster) Submit(spec model.JobSpec) (*Job, error) {
	return c.submit(spec, nil)
}

// SubmitPinned registers a job statically leased to the given nodes:
// the arbiter never grows or shrinks the lease. It is the static-
// partition baseline the arbitrated runs are measured against.
func (c *Cluster) SubmitPinned(spec model.JobSpec, nodes []grid.NodeID) (*Job, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: pinned job %q with no nodes", spec.Name)
	}
	pin := make(model.CapacityMask, c.g.NumNodes())
	for _, n := range nodes {
		if int(n) < 0 || int(n) >= c.g.NumNodes() {
			return nil, fmt.Errorf("cluster: pinned job %q names invalid node %d", spec.Name, n)
		}
		pin[n] = true
	}
	return c.submit(spec, pin)
}

func (c *Cluster) submit(spec model.JobSpec, pin model.CapacityMask) (*Job, error) {
	if c.started {
		return nil, fmt.Errorf("cluster: Submit after Run started")
	}
	if err := spec.Validate(c.g.NumNodes()); err != nil {
		return nil, err
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("job%d", len(c.jobs))
	}
	j := &Job{
		id:      len(c.jobs),
		cluster: c,
		spec:    spec,
		pin:     pin,
		seed:    rng.SeedFor(c.cfg.Seed, uint64(len(c.jobs))),
	}
	j.searcher = sched.LocalSearch{Seed: rng.SeedFor(j.seed, 1)}
	c.jobs = append(c.jobs, j)
	c.eng.AtArg(spec.Arrival, arrivalFire, j)
	return j, nil
}

// arrivalFire is the shared arrival trampoline; the cluster pointer
// rides on the job to keep arrivals allocation-free.
func arrivalFire(arg any) {
	j := arg.(*Job)
	j.cluster.onArrival(j)
}

// Run executes every submitted job to completion and returns the
// report. It may be called once.
func (c *Cluster) Run() (Report, error) {
	if c.started {
		return Report{}, fmt.Errorf("cluster: Run called twice")
	}
	if len(c.jobs) == 0 {
		return Report{}, fmt.Errorf("cluster: no jobs submitted")
	}
	c.started = true
	if c.cfg.Policy != adaptive.PolicyStatic {
		sub := &arbSub{c: c}
		core, err := adaptive.New(sub, sub, simClock{eng: c.eng}, adaptive.Config{
			Policy:             c.cfg.Policy,
			Interval:           c.cfg.Interval,
			DegradationFactor:  c.cfg.DegradationFactor,
			ImbalanceThreshold: c.cfg.ImbalanceThreshold,
			HysteresisGain:     c.cfg.HysteresisGain,
			Cooldown:           c.cfg.Cooldown,
			ThroughputWindow:   c.cfg.ThroughputWindow,
		})
		if err != nil {
			return Report{}, err
		}
		c.ctrl = core
		c.ctrl.Start()
	}
	for !c.allSettled() {
		if !c.eng.Step() {
			return Report{}, fmt.Errorf("cluster: calendar empty with jobs outstanding (deadlock?)")
		}
	}
	if c.ctrl != nil {
		c.ctrl.Stop()
	}
	return c.report(), nil
}

func (c *Cluster) allSettled() bool {
	for _, j := range c.jobs {
		if j.state != JobDone && j.state != JobRejected {
			return false
		}
	}
	return true
}

// active returns the admitted, still-running jobs in admission order.
// The returned slice is a reused buffer, valid until the next call;
// callers that hold it across cluster re-entry (the adaptive plan)
// must copy it.
func (c *Cluster) active() []*Job {
	out := c.activeBuf[:0]
	for _, j := range c.jobs {
		if j.state == JobRunning {
			out = append(out, j)
		}
	}
	c.activeBuf = out
	return out
}

// fits reports whether admitting j keeps every floor satisfiable. It
// mirrors the arbiter's pool computation exactly: pinned tenants
// occupy their pinned nodes, and the unpinned tenants' floors must
// fit the remaining pool — summed under queued/rejecting admission
// (leases stay disjoint), individually under over-admission (leases
// may overlap, but even a shared lease needs the floor's nodes to
// exist). A passed check can therefore never make Arbitrate error, in
// any mode.
func (c *Cluster) fits(j *Job) bool {
	np := c.g.NumNodes()
	if cap(c.fitsPinned) < np {
		c.fitsPinned = make([]bool, np)
	}
	pinned := c.fitsPinned[:np]
	for n := range pinned {
		pinned[n] = false
	}
	floorSum, floorMax := 0, 0
	count := func(x *Job) {
		if x.pin != nil {
			for n, ok := range x.pin {
				if ok {
					pinned[n] = true
				}
			}
			return
		}
		f := x.spec.Floor()
		floorSum += f
		if f > floorMax {
			floorMax = f
		}
	}
	for _, a := range c.active() {
		count(a)
	}
	count(j)
	pool := 0
	for n := 0; n < np; n++ {
		if !pinned[n] {
			pool++
		}
	}
	if c.cfg.Admission == AdmitAll {
		return floorMax <= pool
	}
	return floorSum <= pool
}

func (c *Cluster) onArrival(j *Job) {
	now := c.eng.Now()
	// Strict FIFO: while the queue head is blocked, later arrivals
	// wait behind it even if they would fit — admitting them past the
	// head would starve a big job under a stream of small ones.
	if c.cfg.Admission != AdmitReject && len(c.queue) > 0 {
		j.state = JobQueued
		j.queuedAt = now
		c.queue = append(c.queue, j)
		return
	}
	if c.fits(j) {
		c.admit(j, now)
		return
	}
	switch c.cfg.Admission {
	case AdmitReject:
		j.state = JobRejected
	default:
		j.state = JobQueued
		j.queuedAt = now
		c.queue = append(c.queue, j)
	}
}

// admit leases capacity to j and starts it: the arbiter re-divides the
// grid over the active jobs plus j, every job whose mapping moves is
// remapped, and j gets its own executor on the shared engine.
func (c *Cluster) admit(j *Job, now float64) {
	j.state = JobRunning
	j.admitT = now
	c.rearbitrate(now)

	app := workload.App{Name: j.spec.Name, Spec: j.spec.Spec, CV: j.spec.CV}
	maxIF := c.cfg.MaxInFlight
	if maxIF <= 0 {
		maxIF = 4 * j.spec.Spec.NumStages()
	}
	ex, err := exec.New(c.eng, c.g, j.spec.Spec, j.mapping, exec.Options{
		MaxInFlight: maxIF,
		TotalItems:  j.spec.Items,
		WorkSampler: app.Sampler(rng.SeedFor(j.seed, 2)),
		Seed:        rng.SeedFor(j.seed, 3),
		Share:       c.shares,
	})
	if err != nil {
		panic(fmt.Sprintf("cluster: job %q executor: %v", j.spec.Name, err))
	}
	j.ex = ex
	j.initialMapping = j.mapping.String()
	ex.SetItemHooks(
		func(int) { j.done++; c.checkFinished(j) },
		func(int) { j.lost++; c.checkFinished(j) },
	)
	ex.Start()
}

func (c *Cluster) checkFinished(j *Job) {
	if j.done+j.lost < j.spec.Items {
		return
	}
	// Finalise in a fresh event: the hook fires mid-delivery inside
	// j's executor, and finalisation remaps *other* executors.
	c.eng.ScheduleArg(0, finalizeFire, j)
}

func finalizeFire(arg any) {
	j := arg.(*Job)
	j.cluster.finalize(j)
}

func (c *Cluster) finalize(j *Job) {
	if j.state != JobRunning {
		return
	}
	now := c.eng.Now()
	j.state = JobDone
	j.finishT = now
	// Freed capacity goes first to the admission queue (strict FIFO:
	// the head blocks), then folds into the remaining tenants.
	admitted := false
	for len(c.queue) > 0 && c.fits(c.queue[0]) {
		head := c.queue[0]
		c.queue = c.queue[1:]
		c.admit(head, now)
		admitted = true
	}
	if !admitted && len(c.active()) > 0 {
		c.rearbitrate(now)
	}
}

// rearbitrate re-divides the grid over the active jobs and remaps any
// job whose searched mapping moved. Mappings are searched in admission
// order, each against the residual capacity of those already placed —
// through the incremental divider, so jobs whose lease and upstream
// reservations are unchanged replay their memoized search.
func (c *Cluster) rearbitrate(now float64) {
	actives := c.active()
	if len(actives) == 0 {
		return
	}
	c.arbitrations++
	tenants, out := c.roundArgs(actives)
	if err := c.div.Round(nil, tenants, nil, out); err != nil {
		panic(fmt.Sprintf("cluster: arbitrate: %v", err))
	}
	for i, a := range actives {
		a.setMask(out[i].Mask)
		m := out[i].Mapping
		if a.ex != nil && !m.Equal(a.mapping) {
			if _, err := a.ex.Remap(m, c.cfg.Protocol); err != nil {
				panic(fmt.Sprintf("cluster: job %q remap: %v", a.spec.Name, err))
			}
			a.remaps++
		}
		a.mapping = m
		a.pred = out[i].Pred
	}
}

// roundArgs builds the divider's tenant list and placement buffer for
// the active jobs over reused storage.
func (c *Cluster) roundArgs(actives []*Job) ([]DividerTenant, []Placement) {
	tenants := c.tenantBuf[:0]
	for _, a := range actives {
		tenants = append(tenants, DividerTenant{
			ID:       a.id,
			Name:     a.spec.Name,
			Tenant:   Tenant{Weight: a.spec.NormWeight(), Floor: a.spec.Floor(), Pin: a.pin},
			Spec:     a.spec.Spec,
			Searcher: a.searcher,
		})
	}
	c.tenantBuf = tenants
	if cap(c.placeBuf) < len(actives) {
		c.placeBuf = make([]Placement, len(actives))
	}
	c.placeBuf = c.placeBuf[:len(actives)]
	return tenants, c.placeBuf
}

// setMask copies a lease into the job's owned mask buffer: the
// divider's mask storage is rewritten every round.
func (j *Job) setMask(m model.CapacityMask) {
	if cap(j.mask) < len(m) {
		j.mask = make(model.CapacityMask, len(m))
	}
	j.mask = j.mask[:len(m)]
	copy(j.mask, m)
}

// simClock schedules controller ticks in the cluster's virtual time.
type simClock struct{ eng *sim.Engine }

func (c simClock) Tick(interval float64, fn func(now float64)) (stop func()) {
	t := sim.NewTicker(c.eng, interval, fn)
	return t.Stop
}

// JobReport is one job's outcome.
type JobReport struct {
	Name   string
	State  JobState
	Weight float64
	// Arrival, Admitted, and Finished are virtual times; Waited is the
	// admission-queue delay.
	Arrival, Admitted, Finished, Waited float64
	Done, Lost                          int
	// Makespan is admission-to-finish; Throughput is Done/Makespan.
	Makespan, Throughput float64
	MeanLatency          float64
	// Remaps counts this job's reconfigurations (arrival/finish
	// re-divisions plus adaptive arbitration).
	Remaps                       int
	InitialMapping, FinalMapping string
}

// Report is the outcome of one cluster run.
type Report struct {
	Jobs []JobReport
	// Makespan is the virtual time at which the last job finished.
	Makespan float64
	// Arbitrations counts arbiter rounds (arrivals, finishes, and
	// adaptive re-divisions); Remaps and FaultRemaps mirror the
	// adaptive controller's counters.
	Arbitrations, Remaps int
	// MinWeightedShare and Jain summarise fairness over the per-job
	// weighted throughputs thr_j/w_j: the max-min objective's floor
	// and Jain's index (1 = perfectly fair).
	MinWeightedShare, Jain float64
}

func (c *Cluster) report() Report {
	rep := Report{Arbitrations: c.arbitrations}
	if c.ctrl != nil {
		st := c.ctrl.Stats()
		rep.Remaps = st.Remaps
	}
	var shares []float64
	for _, j := range c.jobs {
		jr := JobReport{
			Name:           j.spec.Name,
			State:          j.state,
			Weight:         j.spec.NormWeight(),
			Arrival:        j.spec.Arrival,
			Done:           j.done,
			Lost:           j.lost,
			Remaps:         j.remaps,
			InitialMapping: j.initialMapping,
		}
		if j.state == JobDone {
			jr.Admitted = j.admitT
			jr.Finished = j.finishT
			jr.Waited = j.admitT - j.spec.Arrival
			jr.Makespan = j.finishT - j.admitT
			if jr.Makespan > 0 {
				jr.Throughput = float64(j.done) / jr.Makespan
			}
			lats := j.ex.Latencies()
			if len(lats) > 0 {
				sum := 0.0
				for _, l := range lats {
					sum += l
				}
				jr.MeanLatency = sum / float64(len(lats))
			}
			jr.FinalMapping = j.ex.Mapping().String()
			if j.finishT > rep.Makespan {
				rep.Makespan = j.finishT
			}
			shares = append(shares, jr.Throughput/jr.Weight)
		}
		rep.Jobs = append(rep.Jobs, jr)
	}
	rep.MinWeightedShare, rep.Jain = fairness(shares)
	return rep
}

// fairness summarises weighted shares: the minimum (the max-min
// objective's floor) and Jain's index (Σx)²/(n·Σx²).
func fairness(shares []float64) (min, jain float64) {
	if len(shares) == 0 {
		return math.NaN(), math.NaN()
	}
	min = math.Inf(1)
	sum, sum2 := 0.0, 0.0
	for _, x := range shares {
		if x < min {
			min = x
		}
		sum += x
		sum2 += x * x
	}
	if sum2 == 0 {
		return min, math.NaN()
	}
	jain = sum * sum / (float64(len(shares)) * sum2)
	return min, jain
}

// String renders a short lease summary for logs.
func (c *Cluster) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d nodes, %d jobs\n", c.g.NumNodes(), len(c.jobs))
	for _, j := range c.jobs {
		fmt.Fprintf(&b, "  %-12s %-8s lease=%s\n", j.spec.Name, j.state, j.mask)
	}
	return b.String()
}
