package cluster

import (
	"reflect"
	"testing"

	"gridpipe/internal/grid"
	"gridpipe/internal/workload"
)

func pinnedFour(g *grid.Grid) []PinnedJob {
	// Four tenants on disjoint 3-node leases of a 12-node grid.
	lease := func(base int) []grid.NodeID {
		return []grid.NodeID{grid.NodeID(base), grid.NodeID(base + 1), grid.NodeID(base + 2)}
	}
	return []PinnedJob{
		{Spec: jobOf("genome", workload.Genome(), 0, 120), Nodes: lease(0)},
		{Spec: jobOf("image", workload.Image(), 0.5, 90), Nodes: lease(3)},
		{Spec: jobOf("video", workload.Video(), 1.0, 80), Nodes: lease(6)},
		{Spec: jobOf("genome2", workload.Genome(), 0.2, 100), Nodes: lease(9)},
	}
}

// TestRunPartitionedDeterministic is the cluster-level arm of the
// partitioned-vs-golden property: the Report must be byte-identical
// for every partition and worker count, with Parts=1 serving as the
// single-threaded reference.
func TestRunPartitionedDeterministic(t *testing.T) {
	g := homGrid(t, 12)
	golden, err := RunPartitioned(g, pinnedFour(g), PartitionedOptions{Parts: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(golden.Jobs) != 4 {
		t.Fatalf("got %d job reports, want 4", len(golden.Jobs))
	}
	for _, jr := range golden.Jobs {
		if jr.State != JobDone || jr.Lost != 0 || jr.Done == 0 {
			t.Fatalf("job %q: state=%v done=%d lost=%d", jr.Name, jr.State, jr.Done, jr.Lost)
		}
		if jr.Makespan <= 0 || jr.Throughput <= 0 || jr.MeanLatency <= 0 {
			t.Fatalf("job %q: degenerate metrics %+v", jr.Name, jr)
		}
	}
	if golden.Arbitrations != 4 {
		t.Fatalf("coordinator saw %d finish beacons, want 4", golden.Arbitrations)
	}

	for _, parts := range []int{2, 3, 4} {
		for _, workers := range []int{0, 1, 2} {
			rep, err := RunPartitioned(g, pinnedFour(g), PartitionedOptions{
				Parts: parts, Workers: workers, Seed: 42,
			})
			if err != nil {
				t.Fatalf("parts=%d workers=%d: %v", parts, workers, err)
			}
			if !reflect.DeepEqual(rep, golden) {
				t.Fatalf("parts=%d workers=%d: report diverges from single-threaded golden:\n got %+v\nwant %+v",
					parts, workers, rep, golden)
			}
		}
	}
}

// TestRunPartitionedAutoParts pins the Parts=0 default: capped at the
// tenant count, still matching the golden.
func TestRunPartitionedAutoParts(t *testing.T) {
	g := homGrid(t, 12)
	golden, err := RunPartitioned(g, pinnedFour(g), PartitionedOptions{Parts: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunPartitioned(g, pinnedFour(g), PartitionedOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, golden) {
		t.Fatal("auto partition count diverges from golden")
	}
}

func TestRunPartitionedValidation(t *testing.T) {
	g := homGrid(t, 6)
	job := func(name string, ns ...grid.NodeID) PinnedJob {
		return PinnedJob{Spec: jobOf(name, workload.Genome(), 0, 10), Nodes: ns}
	}
	if _, err := RunPartitioned(g, nil, PartitionedOptions{}); err == nil {
		t.Fatal("no jobs must error")
	}
	if _, err := RunPartitioned(g, []PinnedJob{job("a", 0, 1), job("b", 1, 2)}, PartitionedOptions{}); err == nil {
		t.Fatal("overlapping leases must error")
	}
	if _, err := RunPartitioned(g, []PinnedJob{job("a", 0, 99)}, PartitionedOptions{}); err == nil {
		t.Fatal("invalid node must error")
	}
	if _, err := RunPartitioned(g, []PinnedJob{job("a")}, PartitionedOptions{}); err == nil {
		t.Fatal("empty lease must error")
	}
	if _, err := RunPartitioned(g, []PinnedJob{job("a", 0, 1)}, PartitionedOptions{Parts: -1}); err == nil {
		t.Fatal("negative partition count must error")
	}

	churny := homGrid(t, 6)
	churny.SetChurn(&grid.ChurnSchedule{})
	if _, err := RunPartitioned(churny, []PinnedJob{job("a", 0, 1)}, PartitionedOptions{}); err == nil {
		t.Fatal("churn must be rejected")
	}
}
