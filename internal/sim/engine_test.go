package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("final time = %v", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	var e Engine
	var got []string
	e.Schedule(1, func() { got = append(got, "a") })
	e.Schedule(1, func() { got = append(got, "b") })
	e.Schedule(1, func() { got = append(got, "c") })
	e.Run()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("tie order = %v", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Fatal("Cancelled() should be true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel is fine.
	ev.Cancel()
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var got []float64
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(5, func() { got = append(got, 5) })
	e.RunUntil(3)
	if len(got) != 1 || e.Now() != 3 {
		t.Fatalf("got=%v now=%v", got, e.Now())
	}
	// Event exactly at the boundary fires.
	e.Schedule(0, func() { got = append(got, 3) })
	e.RunUntil(3)
	if len(got) != 2 {
		t.Fatalf("boundary event did not fire: %v", got)
	}
	e.RunUntil(10)
	if len(got) != 3 || e.Now() != 10 {
		t.Fatalf("got=%v now=%v", got, e.Now())
	}
}

func TestRunUntilBackwardsPanics(t *testing.T) {
	var e Engine
	e.Schedule(2, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.RunUntil(1)
}

func TestSchedulePanics(t *testing.T) {
	var e Engine
	for _, d := range []float64{-1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for delay %v", d)
				}
			}()
			e.Schedule(d, func() {})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for nil fn")
			}
		}()
		e.Schedule(1, nil)
	}()
}

func TestNextEventTime(t *testing.T) {
	var e Engine
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty calendar should report none")
	}
	ev := e.Schedule(2, func() {})
	if tm, ok := e.NextEventTime(); !ok || tm != 2 {
		t.Fatalf("NextEventTime = %v,%v", tm, ok)
	}
	ev.Cancel()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("cancelled event should be skipped")
	}
}

func TestPendingAndStepOnEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty should be false")
	}
	e.Schedule(1, func() {})
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestTicker(t *testing.T) {
	var e Engine
	var ticks []float64
	tk := NewTicker(&e, 2, func(now float64) {
		ticks = append(ticks, now)
	})
	e.Schedule(7, func() { tk.Stop() })
	e.Run()
	if len(ticks) != 3 || ticks[0] != 2 || ticks[1] != 4 || ticks[2] != 6 {
		t.Fatalf("ticks = %v", ticks)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	var e Engine
	count := 0
	var tk *Ticker
	tk = NewTicker(&e, 1, func(now float64) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 2 {
		t.Fatalf("ticks = %d, want 2", count)
	}
}

func TestTickerPanicsOnBadPeriod(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTicker(&e, 0, func(float64) {})
}

// Property: firing order is always by non-decreasing time regardless of
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []float64) bool {
		var e Engine
		valid := 0
		var fired []float64
		for _, d := range delays {
			if d < 0 || d != d || d > 1e12 {
				continue
			}
			valid++
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != valid {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestManyEventsStress(t *testing.T) {
	var e Engine
	const n = 50000
	count := 0
	for i := 0; i < n; i++ {
		e.Schedule(float64((i*7919)%1000), func() { count++ })
	}
	e.Run()
	if count != n {
		t.Fatalf("fired %d of %d", count, n)
	}
}

func TestAtPastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for At in the past")
		}
	}()
	e.At(1, func() {})
}

func TestEventTimeAccessor(t *testing.T) {
	var e Engine
	ev := e.Schedule(3.5, func() {})
	if ev.Time() != 3.5 {
		t.Fatalf("Time = %v", ev.Time())
	}
}
