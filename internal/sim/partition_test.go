package sim

import (
	"hash/fnv"
	"math"
	"testing"

	"gridpipe/internal/rng"
)

// flowNet is the property-test workload: J jobs, each traversing a
// random route of nodes spread across partitions, with FCFS service
// (a busy-until accumulator per node) and per-hop transfer delays.
// Cross-partition hops carry at least the lookahead; intra-partition
// hops may be arbitrarily short. Every service time, delay, and start
// time is drawn from a seeded generator with full mantissa entropy, so
// event-time ties are (measure-zero) impossible and each node performs
// the same float operations in the same order in every execution mode
// — which is exactly why a partitioned run's completion digest must
// equal the single-threaded one bit for bit.
type flowNet struct {
	assign []int // node -> partition
	busy   []float64
	routes [][]int
	svc    [][]float64
	delay  [][]float64
	start  []float64
	finish []float64

	// Exactly one of pe/eng is set: the partitioned or the reference
	// single-engine execution of the same workload.
	pe  *ParallelEngine
	eng *Engine
}

type flowTok struct {
	net      *flowNet
	job, hop int
}

func buildFlowNet(seed uint64, nodes, parts, jobs, hops int, lookahead float64) *flowNet {
	r := rng.New(seed)
	n := &flowNet{
		assign: make([]int, nodes),
		busy:   make([]float64, nodes),
		routes: make([][]int, jobs),
		svc:    make([][]float64, jobs),
		delay:  make([][]float64, jobs),
		start:  make([]float64, jobs),
		finish: make([]float64, jobs),
	}
	for i := range n.assign {
		n.assign[i] = r.Intn(parts)
	}
	for j := 0; j < jobs; j++ {
		n.routes[j] = make([]int, hops)
		n.svc[j] = make([]float64, hops)
		n.delay[j] = make([]float64, hops)
		for h := 0; h < hops; h++ {
			n.routes[j][h] = r.Intn(nodes)
			n.svc[j][h] = 0.01 + 0.3*r.Float64()
		}
		for h := 1; h < hops; h++ {
			if n.assign[n.routes[j][h-1]] != n.assign[n.routes[j][h]] {
				n.delay[j][h] = lookahead * (1 + r.Float64())
			} else {
				n.delay[j][h] = 0.001 * r.Float64()
			}
		}
		n.start[j] = r.Float64()
		n.finish[j] = math.NaN()
	}
	return n
}

func (n *flowNet) engineAt(node int) *Engine {
	if n.eng != nil {
		return n.eng
	}
	return &n.pe.parts[n.assign[node]].Engine
}

func flowArrive(arg any) {
	tok := arg.(*flowTok)
	n := tok.net
	node := n.routes[tok.job][tok.hop]
	eng := n.engineAt(node)
	now := eng.Now()
	startSvc := now
	if n.busy[node] > startSvc {
		startSvc = n.busy[node]
	}
	done := startSvc + n.svc[tok.job][tok.hop]
	n.busy[node] = done
	eng.ScheduleArg(done-now, flowDepart, tok)
}

func flowDepart(arg any) {
	tok := arg.(*flowTok)
	n := tok.net
	from := n.routes[tok.job][tok.hop]
	eng := n.engineAt(from)
	tok.hop++
	if tok.hop >= len(n.routes[tok.job]) {
		n.finish[tok.job] = eng.Now()
		return
	}
	to := n.routes[tok.job][tok.hop]
	d := n.delay[tok.job][tok.hop]
	if n.pe != nil && n.assign[from] != n.assign[to] {
		n.pe.parts[n.assign[from]].Send(n.assign[to], d, flowArrive, tok)
		return
	}
	eng.ScheduleArg(d, flowArrive, tok)
}

// inject schedules every job's first arrival on the engine owning its
// entry node.
func (n *flowNet) inject() {
	for j := range n.routes {
		tok := &flowTok{net: n, job: j}
		n.engineAt(n.routes[j][0]).AtArg(n.start[j], flowArrive, tok)
	}
}

// digest hashes the bit patterns of every job's completion time.
func (n *flowNet) digest(t *testing.T) uint64 {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	for j, f := range n.finish {
		if math.IsNaN(f) {
			t.Fatalf("job %d never finished", j)
		}
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestPartitionedDigestMatchesGolden is the determinism cross-check:
// for random topologies and partition/worker counts, the partitioned
// run's completion digest equals the single-threaded golden digest for
// the same seed.
func TestPartitionedDigestMatchesGolden(t *testing.T) {
	const lookahead = 0.05
	cases := []struct{ nodes, parts, jobs, hops int }{
		{8, 2, 6, 12},
		{17, 3, 10, 20},
		{40, 5, 25, 16},
		{64, 8, 40, 10},
		{30, 30, 12, 8}, // one node-ish per partition
	}
	for seed := uint64(1); seed <= 5; seed++ {
		for _, tc := range cases {
			// Golden: the same workload on one plain Engine.
			ref := buildFlowNet(seed, tc.nodes, tc.parts, tc.jobs, tc.hops, lookahead)
			ref.eng = &Engine{}
			ref.inject()
			ref.eng.Run()
			want := ref.digest(t)

			for _, workers := range []int{0, 1, 2, 7} {
				n := buildFlowNet(seed, tc.nodes, tc.parts, tc.jobs, tc.hops, lookahead)
				n.pe = NewParallel(tc.parts, lookahead)
				n.pe.SetWorkers(workers)
				n.inject()
				n.pe.Run()
				if got := n.digest(t); got != want {
					t.Fatalf("seed %d nodes=%d parts=%d workers=%d: digest %x != golden %x",
						seed, tc.nodes, tc.parts, workers, got, want)
				}
			}
		}
	}
}

// TestParallelSinglePartitionBitIdentical pins the degenerate path: a
// 1-partition ParallelEngine must reproduce the plain engine's event
// sequence exactly (same fire times, same order).
func TestParallelSinglePartitionBitIdentical(t *testing.T) {
	record := func(schedule func(delay float64, fn func(any), arg any), run func() float64) []float64 {
		r := rng.New(99)
		type cell struct{ t float64 }
		var log []float64
		fn := func(arg any) { log = append(log, arg.(*cell).t) }
		for i := 0; i < 200; i++ {
			c := &cell{t: r.Float64() * 10}
			schedule(c.t, fn, c)
		}
		run()
		return log
	}
	var plain Engine
	wantLog := record(func(d float64, fn func(any), arg any) { plain.ScheduleArg(d, fn, arg) }, plain.Run)

	pe := NewParallel(1, 0)
	p := pe.Part(0)
	gotLog := record(func(d float64, fn func(any), arg any) { p.ScheduleArg(d, fn, arg) }, pe.Run)

	if len(wantLog) != len(gotLog) {
		t.Fatalf("fired %d events, want %d", len(gotLog), len(wantLog))
	}
	for i := range wantLog {
		if wantLog[i] != gotLog[i] {
			t.Fatalf("event %d fired with payload %v, want %v", i, gotLog[i], wantLog[i])
		}
	}
	if pe.Events() != uint64(len(wantLog)) {
		t.Fatalf("Events() = %d, want %d", pe.Events(), len(wantLog))
	}
}

// TestParallelRunUntil pins the bounded-run contract: events at or
// before the bound fire (including cross-partition deliveries landing
// exactly on it), later ones stay queued, and every partition clock
// parks at the bound.
func TestParallelRunUntil(t *testing.T) {
	pe := NewParallel(2, 1.0)
	pe.SetWorkers(1)
	var log []string
	a, b := pe.Part(0), pe.Part(1)
	a.Schedule(0.5, func() { log = append(log, "a@0.5") })
	// Fires at 2.0 on partition 1 via a cross send raised at t=0.5+...
	a.Schedule(1.0, func() {
		a.Send(1, 1.0, func(any) { log = append(log, "b@2.0") }, nil)
	})
	b.Schedule(3.5, func() { log = append(log, "b@3.5") })

	pe.RunUntil(2.0)
	if got := len(log); got != 2 || log[0] != "a@0.5" || log[1] != "b@2.0" {
		t.Fatalf("RunUntil(2) fired %v, want [a@0.5 b@2.0]", log)
	}
	if a.Now() != 2.0 || b.Now() != 2.0 || pe.Now() != 2.0 {
		t.Fatalf("clocks at (%v, %v, %v), want 2.0", a.Now(), b.Now(), pe.Now())
	}
	pe.Run()
	if got := len(log); got != 3 || log[2] != "b@3.5" {
		t.Fatalf("Run fired %v, want trailing b@3.5", log)
	}
}

// TestSendValidation pins the Send API contract: below-lookahead
// cross-partition sends and invalid destinations panic; self-sends
// take the local path with no lookahead floor.
func TestSendValidation(t *testing.T) {
	pe := NewParallel(2, 0.5)
	s := pe.Part(0)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("below-lookahead send", func() { s.Send(1, 0.1, func(any) {}, nil) })
	mustPanic("invalid partition", func() { s.Send(7, 1.0, func(any) {}, nil) })
	mustPanic("nil callback", func() { s.Send(1, 1.0, nil, nil) })

	ran := false
	s.Send(0, 0.01, func(any) { ran = true }, nil) // self-send below lookahead: fine
	pe.Run()
	if !ran {
		t.Fatal("self-send did not fire")
	}
}

// TestParallelSetupSends pins that Sends staged before Run (during
// scenario setup) are delivered by the first window exchange.
func TestParallelSetupSends(t *testing.T) {
	pe := NewParallel(3, 0.2)
	got := 0
	pe.Part(0).Send(2, 0.3, func(any) { got++ }, nil)
	pe.Part(1).Send(2, 0.25, func(any) { got++ }, nil)
	pe.Run()
	if got != 2 {
		t.Fatalf("delivered %d setup sends, want 2", got)
	}
}
