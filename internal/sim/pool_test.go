package sim

import "testing"

// The pool tests are white-box: they pin slot indexes to prove handles
// and slots really are recycled, not merely that behaviour looks right
// from outside.

func TestFiredSlotRecycledAndStaleHandleInert(t *testing.T) {
	var e Engine
	fired := map[string]bool{}
	h1 := e.Schedule(1, func() { fired["first"] = true })
	if !h1.Pending() {
		t.Fatal("h1 should be pending")
	}
	if !e.Step() {
		t.Fatal("Step should fire")
	}
	if !fired["first"] || h1.Pending() {
		t.Fatalf("first event: fired=%v pending=%v", fired["first"], h1.Pending())
	}

	h2 := e.Schedule(1, func() { fired["second"] = true })
	if h2.idx != h1.idx {
		t.Fatalf("slot not recycled: h1.idx=%d h2.idx=%d", h1.idx, h2.idx)
	}
	if h2.gen == h1.gen {
		t.Fatal("generation must advance on recycle")
	}
	// The stale handle must not be able to touch the slot's new tenant.
	h1.Cancel()
	if h1.Cancelled() {
		t.Fatal("stale handle reports Cancelled")
	}
	if !h2.Pending() {
		t.Fatal("successor event was cancelled through a stale handle")
	}
	e.Run()
	if !fired["second"] {
		t.Fatal("successor event did not fire")
	}
}

func TestCancelledSlotCollectedOnSurface(t *testing.T) {
	var e Engine
	h := e.Schedule(1, func() { t.Fatal("cancelled event fired") })
	h.Cancel()
	if !h.Cancelled() {
		t.Fatal("Cancelled() should be true while the slot is still queued")
	}
	if got := len(e.free); got != 0 {
		t.Fatalf("slot freed before surfacing: free=%d", got)
	}
	if e.Step() {
		t.Fatal("Step fired something on an all-cancelled calendar")
	}
	// Surfacing truly removed the event: slot back on the free list,
	// heap empty, generation bumped so the old handle is inert.
	if len(e.free) != 1 || len(e.heap) != 0 {
		t.Fatalf("cancelled slot not collected: free=%d heap=%d", len(e.free), len(e.heap))
	}
	if h.Cancelled() || h.Pending() {
		t.Fatal("handle should be inert after collection")
	}

	fired := false
	h2 := e.Schedule(1, func() { fired = true })
	if h2.idx != h.idx {
		t.Fatalf("slot not reused: %d vs %d", h2.idx, h.idx)
	}
	h.Cancel() // stale: must not cancel its successor
	e.Run()
	if !fired {
		t.Fatal("recycled handle cancelled its successor")
	}
}

func TestSteadyStateReusesSlab(t *testing.T) {
	var e Engine
	var churn func()
	n := 0
	churn = func() {
		n++
		if n < 10000 {
			e.Schedule(1, churn)
		}
	}
	e.Schedule(1, churn)
	e.Run()
	if n != 10000 {
		t.Fatalf("fired %d", n)
	}
	// One event in flight at a time: the slab must not have grown past
	// a handful of slots.
	if len(e.slab) > 4 {
		t.Fatalf("slab grew to %d slots for a 1-deep calendar", len(e.slab))
	}
}

func TestResetMidRun(t *testing.T) {
	var e Engine
	var got []float64
	e.Schedule(1, func() { got = append(got, e.Now()) })
	h := e.Schedule(2, func() { got = append(got, e.Now()) })
	e.Schedule(3, func() { t.Error("event survived Reset") })
	e.Step() // fire the t=1 event only
	e.Reset()

	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d", e.Now(), e.Pending())
	}
	if h.Pending() || h.Cancelled() {
		t.Fatal("pre-Reset handle still live")
	}
	h.Cancel() // must not touch anything scheduled after Reset

	// The engine is fully reusable: same schedule, same trace, and the
	// slab capacity is retained rather than re-grown.
	slots := len(e.slab)
	e.Schedule(1, func() { got = append(got, 100+e.Now()) })
	e.Schedule(2, func() { got = append(got, 100+e.Now()) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 101 || got[2] != 102 {
		t.Fatalf("trace after Reset = %v", got)
	}
	if len(e.slab) != slots {
		t.Fatalf("slab re-grew across Reset: %d -> %d", slots, len(e.slab))
	}
}

func TestResetDeterministicReplay(t *testing.T) {
	run := func(e *Engine) []float64 {
		var trace []float64
		for i := 0; i < 50; i++ {
			d := float64((i * 13) % 7)
			e.Schedule(d, func() { trace = append(trace, e.Now()) })
		}
		e.Run()
		return trace
	}
	var e Engine
	first := run(&e)
	e.Reset()
	second := run(&e)
	if len(first) != len(second) {
		t.Fatalf("replay length: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestScheduleArg(t *testing.T) {
	var e Engine
	type payload struct{ hits int }
	p := &payload{}
	bump := func(arg any) { arg.(*payload).hits++ }
	e.ScheduleArg(1, bump, p)
	e.ScheduleArg(2, bump, p)
	h := e.ScheduleArg(3, bump, p)
	h.Cancel()
	e.Run()
	if p.hits != 2 {
		t.Fatalf("hits = %d, want 2", p.hits)
	}
	if e.Now() != 2 {
		t.Fatalf("cancelled ScheduleArg event advanced the clock: now=%v", e.Now())
	}
}

func TestScheduleArgPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil fn")
		}
	}()
	e.ScheduleArg(1, nil, 7)
}
