package sim

import "testing"

// Regression tests for generation-counted handles held across Reset:
// the engine pool (internal/bench) reuses one engine across thousands
// of experiment runs, so a handle leaked from run N must be inert in
// run N+1 even when its slot has been recycled by a new event.

// TestResetInvalidatesStaleHandles pins that a pre-Reset handle can
// neither cancel nor observe the slot's post-Reset occupant.
func TestResetInvalidatesStaleHandles(t *testing.T) {
	var eng Engine
	stale := make([]Event, 0, 8)
	for i := 0; i < 8; i++ {
		stale = append(stale, eng.Schedule(float64(i), func() {}))
	}
	eng.Reset()

	// Refill every recycled slot with a new event.
	fired := 0
	for i := 0; i < 8; i++ {
		eng.Schedule(float64(i), func() { fired++ })
	}
	// Stale handles must read as dead and their Cancel must be a no-op
	// on the slots' new occupants.
	for i, h := range stale {
		if h.Pending() {
			t.Fatalf("stale handle %d reads Pending after Reset", i)
		}
		if h.Cancelled() {
			t.Fatalf("stale handle %d reads Cancelled after Reset", i)
		}
		h.Cancel()
	}
	eng.Run()
	if fired != 8 {
		t.Fatalf("stale Cancel suppressed new events: fired %d of 8", fired)
	}
}

// TestCancelAfterResetDoesNotFireOldEvent pins the other direction: an
// event scheduled before Reset must never fire after it, no matter how
// the recycled slots are exercised — including cancelling the stale
// handle mid-run, after its slot already hosts a live event.
func TestCancelAfterResetDoesNotFireOldEvent(t *testing.T) {
	var eng Engine
	oldFired := false
	h := eng.Schedule(1.0, func() { oldFired = true })
	eng.Reset()

	newFired := 0
	eng.Schedule(0.5, func() {
		// Mid-run cancel of the stale handle: its slot is now occupied
		// by one of the new events.
		h.Cancel()
	})
	eng.Schedule(1.0, func() { newFired++ })
	eng.Schedule(2.0, func() { newFired++ })
	eng.Run()
	if oldFired {
		t.Fatal("pre-Reset event fired after Reset")
	}
	if newFired != 2 {
		t.Fatalf("stale mid-run Cancel killed a live event: fired %d of 2", newFired)
	}
}

// TestResetHandleReuseAcrossManyResets drives the generation counters
// through repeated Reset/refill cycles — the engine-pool lifecycle —
// and checks a handle from each generation stays dead in all later
// ones.
func TestResetHandleReuseAcrossManyResets(t *testing.T) {
	var eng Engine
	var graveyard []Event
	for cycle := 0; cycle < 50; cycle++ {
		fired := 0
		want := 4
		hs := make([]Event, 0, want)
		for i := 0; i < want; i++ {
			hs = append(hs, eng.Schedule(float64(i)*0.25, func() { fired++ }))
		}
		// Every handle from every earlier cycle must be inert.
		for _, g := range graveyard {
			if g.Pending() || g.Cancelled() {
				t.Fatalf("cycle %d: graveyard handle alive", cycle)
			}
			g.Cancel()
		}
		eng.Run()
		if fired != want {
			t.Fatalf("cycle %d: fired %d of %d", cycle, fired, want)
		}
		graveyard = append(graveyard, hs...)
		eng.Reset()
	}
}
