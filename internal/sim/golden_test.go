package sim

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestGoldenFiringOrder pins the exact firing order of a deterministic
// but adversarial schedule: duplicate times (tie-break by sequence),
// nested scheduling from inside callbacks, and interleaved cancels.
// The digest was recorded against the seed container/heap engine; any
// calendar rewrite must reproduce it bit-for-bit.
func TestGoldenFiringOrder(t *testing.T) {
	const goldenFiringDigest = "8ba254a8c9921b45"

	var e Engine
	h := fnv.New64a()
	record := func(id int) {
		fmt.Fprintf(h, "%d@%.12g;", id, e.Now())
	}

	// A deterministic LCG so the schedule is reproducible without any
	// dependency on the engine under test.
	state := uint64(12345)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}

	var cancels []func()
	for i := 0; i < 200; i++ {
		id := i
		// Coarse times force many ties; tie-break order must hold.
		delay := float64(next() % 16)
		ev := e.Schedule(delay, func() {
			record(id)
			if id%5 == 0 {
				nid := 1000 + id
				e.Schedule(float64(next()%4), func() { record(nid) })
			}
		})
		if i%7 == 0 {
			cancels = append(cancels, ev.Cancel)
		}
	}
	// Cancel a deterministic subset before running.
	for i, cancel := range cancels {
		if i%2 == 0 {
			cancel()
		}
	}
	e.Run()
	if got := fmt.Sprintf("%016x", h.Sum64()); got != goldenFiringDigest {
		t.Fatalf("firing-order digest = %s, want %s", got, goldenFiringDigest)
	}
}
