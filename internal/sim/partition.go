// Partitioned parallel simulation: a ParallelEngine shards the event
// calendar into per-partition Engines advanced concurrently under a
// conservative synchronization window.
//
// The protocol is the classic conservative (YAWNS-style) windowed
// scheme. Every cross-partition interaction carries at least
// `lookahead` seconds of virtual latency — in the grid this is the
// minimum cross-partition link latency, at the cluster layer the lease
// transfer bound — so if the earliest pending event anywhere sits at
// time m, no partition can receive anything before m+lookahead. All
// partitions may therefore fire their events in [m, m+lookahead) in
// parallel without coordination. Cross-partition events raised during
// the window are staged in per-partition outboxes and exchanged only
// at the window edge, keeping the intra-window hot path exactly the
// single-threaded calendar: lock-free and allocation-free per event.
//
// Determinism: within a window each partition fires its own calendar
// in (time, seq) order, untouched by any other partition; at the edge
// the inbox merge delivers staged events in (time, source partition,
// send seq) order, so the destination calendar's tie-breaking sequence
// numbers are assigned identically on every run — results do not
// depend on the number of OS workers or on goroutine scheduling.
//
// A ParallelEngine with one partition never stages or exchanges
// anything: Send degenerates to ScheduleArg and Run to Engine.Run, so
// single-partition runs are bit-identical to the plain engine and all
// existing goldens hold.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync/atomic"
)

// xev is one staged cross-partition event: fire time, deterministic
// merge key (source partition, per-source send sequence), and the
// bound-callback pair of ScheduleArg.
type xev struct {
	time float64
	seq  uint64 // per-source send counter: the merge tie-breaker
	src  int32
	fn   func(any)
	arg  any
}

// Shard is one partition of a ParallelEngine: a full Engine calendar
// (all of Schedule/At/Cancel/Now works unchanged, and &shard.Engine
// can be handed to anything that drives a plain engine) plus the
// cross-partition Send staging area. During a window a Shard is owned
// exclusively by one worker goroutine; between windows the coordinator
// owns all of them.
type Shard struct {
	Engine
	id      int
	pe      *ParallelEngine
	outbox  [][]xev // outbox[dst]: events staged for partition dst this window
	inbox   []xev   // merge scratch, reused across windows
	sendSeq uint64
	fired   uint64 // events fired by this partition
}

// ID returns the partition index.
func (s *Shard) ID() int { return s.id }

// Fired returns how many events this partition has fired.
func (s *Shard) Fired() uint64 { return s.fired }

// Send schedules fn(arg) on partition dst after delay seconds of the
// sender's virtual time. A send to another partition must respect the
// engine's lookahead (delay >= lookahead) — that bound is what lets
// windows run concurrently — and is delivered at the next window edge.
// A send to the own partition is an ordinary local ScheduleArg with no
// lookahead requirement.
func (s *Shard) Send(dst int, delay float64, fn func(any), arg any) {
	if fn == nil {
		panic("sim: Send with nil callback")
	}
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Send with invalid delay %v", delay))
	}
	if dst == s.id {
		s.ScheduleArg(delay, fn, arg)
		return
	}
	if dst < 0 || dst >= len(s.pe.parts) {
		panic(fmt.Sprintf("sim: Send to invalid partition %d of %d", dst, len(s.pe.parts)))
	}
	if delay < s.pe.lookahead {
		panic(fmt.Sprintf("sim: cross-partition Send with delay %v below lookahead %v",
			delay, s.pe.lookahead))
	}
	s.outbox[dst] = append(s.outbox[dst], xev{
		time: s.Engine.now + delay,
		seq:  s.sendSeq,
		src:  int32(s.id),
		fn:   fn,
		arg:  arg,
	})
	s.sendSeq++
}

// runWindow fires this partition's events with time < w (time <= w
// when incl is set) and parks the clock at the window edge. It runs on
// a worker goroutine with exclusive ownership of the shard.
func (s *Shard) runWindow(w float64, incl bool) {
	for {
		tm, ok := s.Engine.peek()
		if !ok || tm > w || (!incl && tm == w) {
			break
		}
		s.Engine.Step()
		s.fired++
	}
	if s.Engine.now < w {
		s.Engine.now = w
	}
}

// ParallelEngine advances P partition calendars concurrently under
// conservative synchronization windows. Build with NewParallel,
// populate the partitions (Part(i)), then Run or RunUntil from one
// goroutine. The zero value is unusable.
type ParallelEngine struct {
	parts     []*Shard
	lookahead float64
	now       float64
	workers   int
}

// NewParallel builds a parallel engine with the given number of
// partitions and conservative lookahead: the minimum virtual latency
// of any cross-partition interaction (cross-partition Sends below it
// panic). It panics on parts < 1, and on a non-positive or NaN
// lookahead when parts > 1 (a single partition needs no lookahead).
func NewParallel(parts int, lookahead float64) *ParallelEngine {
	if parts < 1 {
		panic(fmt.Sprintf("sim: NewParallel with %d partitions", parts))
	}
	if parts > 1 && (lookahead <= 0 || math.IsNaN(lookahead)) {
		panic(fmt.Sprintf("sim: NewParallel with invalid lookahead %v", lookahead))
	}
	pe := &ParallelEngine{lookahead: lookahead, parts: make([]*Shard, parts)}
	for i := range pe.parts {
		sh := &Shard{id: i, pe: pe}
		if parts > 1 {
			sh.outbox = make([][]xev, parts)
		}
		pe.parts[i] = sh
	}
	return pe
}

// Parts returns the number of partitions.
func (pe *ParallelEngine) Parts() int { return len(pe.parts) }

// Part returns partition i.
func (pe *ParallelEngine) Part(i int) *Shard { return pe.parts[i] }

// Lookahead returns the conservative window bound.
func (pe *ParallelEngine) Lookahead() float64 { return pe.lookahead }

// Now returns the virtual clock: the time of the last fired event on
// the single-partition path, the last completed window edge otherwise.
func (pe *ParallelEngine) Now() float64 { return pe.now }

// Events returns the total number of events fired across all
// partitions. It must not be called while Run is in progress.
func (pe *ParallelEngine) Events() uint64 {
	var n uint64
	for _, p := range pe.parts {
		n += p.fired
	}
	return n
}

// SetWorkers bounds the OS-level parallelism of Run: at most n worker
// goroutines advance partitions within a window (0 = GOMAXPROCS,
// capped at the partition count either way). Results are identical for
// every worker count; only wall-clock changes.
func (pe *ParallelEngine) SetWorkers(n int) { pe.workers = n }

// Run fires events until every partition's calendar is empty and
// returns the final virtual time.
func (pe *ParallelEngine) Run() float64 {
	pe.run(math.Inf(1))
	return pe.now
}

// RunUntil fires events with time <= t — including cross-partition
// deliveries landing exactly at t — then advances every partition's
// clock to t. It panics when t is in the past.
func (pe *ParallelEngine) RunUntil(t float64) {
	if t < pe.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now=%v", t, pe.now))
	}
	pe.run(t)
	for _, p := range pe.parts {
		if p.Engine.now < t {
			p.Engine.now = t
		}
	}
	pe.now = t
}

// run advances windows until no event at time <= limit remains.
func (pe *ParallelEngine) run(limit float64) {
	if len(pe.parts) == 1 {
		pe.runSingle(limit)
		return
	}
	nw := pe.workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > len(pe.parts) {
		nw = len(pe.parts)
	}
	// The worker machinery lives in its own method: its goroutine
	// closure forces every captured variable onto the heap, and keeping
	// it out of the inline path keeps that path allocation-free.
	if nw > 1 {
		pe.runWorkers(limit, nw)
		return
	}
	for {
		w, incl, ok := pe.nextWindow(limit)
		if !ok {
			return
		}
		for _, p := range pe.parts {
			p.runWindow(w, incl)
		}
		pe.now = w
	}
}

// nextWindow exchanges staged sends and computes the next window: its
// end, whether the edge itself is included (the final window of a
// bounded run), and whether any event at time <= limit remains.
func (pe *ParallelEngine) nextWindow(limit float64) (w float64, incl, ok bool) {
	// Outboxes are drained at every window edge (and here, so that
	// Sends staged before Run are honoured), making the per-calendar
	// minimum the true global minimum.
	pe.exchange()
	m := math.Inf(1)
	for _, p := range pe.parts {
		if tm, ok := p.Engine.peek(); ok && tm < m {
			m = tm
		}
	}
	if math.IsInf(m, 1) || m > limit {
		return 0, false, false
	}
	w, incl = m+pe.lookahead, false
	if w > limit {
		// Final window of a bounded run: everything left at <= limit
		// fires. Cross sends raised here land at >= m+lookahead >
		// limit — except exactly-at-limit arrivals when m+lookahead
		// == limit, which the next loop iteration picks up.
		w, incl = limit, true
	}
	return w, incl, true
}

// runWorkers is the multi-goroutine window loop: nw persistent workers
// each pull partition indexes from a shared counter within a window.
// Spawned once per run, not per window.
func (pe *ParallelEngine) runWorkers(limit float64, nw int) {
	var (
		startCh = make(chan float64)
		inclCh  = make(chan bool, nw)
		doneCh  = make(chan struct{})
		next    atomic.Int64
	)
	for w := 0; w < nw; w++ {
		go func() {
			for wend := range startCh {
				incl := <-inclCh
				for {
					i := next.Add(1) - 1
					if int(i) >= len(pe.parts) {
						break
					}
					pe.parts[i].runWindow(wend, incl)
				}
				doneCh <- struct{}{}
			}
		}()
	}
	defer close(startCh)
	for {
		w, incl, ok := pe.nextWindow(limit)
		if !ok {
			return
		}
		next.Store(0)
		for i := 0; i < nw; i++ {
			startCh <- w
			inclCh <- incl
		}
		for i := 0; i < nw; i++ {
			<-doneCh
		}
		pe.now = w
	}
}

// runSingle is the single-partition fast path: the plain engine's
// loop, bit-identical to Engine.Run / Engine.RunUntil.
func (pe *ParallelEngine) runSingle(limit float64) {
	p := pe.parts[0]
	for {
		tm, ok := p.Engine.peek()
		if !ok || tm > limit {
			break
		}
		p.Engine.Step()
		p.fired++
	}
	pe.now = p.Engine.now
}

// exchange merges every partition's outboxes into the destination
// calendars, in (time, source partition, send seq) order so the
// destination's tie-breaking sequence numbers are deterministic. It
// runs on the coordinator between windows; the inbox scratch and the
// outbox slices are reused, so steady-state exchanges do not allocate.
func (pe *ParallelEngine) exchange() {
	for _, dst := range pe.parts {
		in := dst.inbox[:0]
		for _, src := range pe.parts {
			ob := src.outbox[dst.id]
			if len(ob) == 0 {
				continue
			}
			in = append(in, ob...)
			src.outbox[dst.id] = ob[:0]
		}
		if len(in) == 0 {
			continue
		}
		slices.SortFunc(in, func(a, b xev) int {
			switch {
			case a.time != b.time:
				if a.time < b.time {
					return -1
				}
				return 1
			case a.src != b.src:
				return int(a.src) - int(b.src)
			case a.seq < b.seq:
				return -1
			case a.seq > b.seq:
				return 1
			default:
				return 0
			}
		})
		for i := range in {
			dst.Engine.AtArg(in[i].time, in[i].fn, in[i].arg)
			in[i].fn, in[i].arg = nil, nil // don't pin payloads until next reuse
		}
		dst.inbox = in
	}
}
