// Package sim implements the deterministic discrete-event simulation
// engine that drives every grid experiment in virtual time.
//
// The engine is an event calendar tuned for allocation-free steady
// state: events live in a slab of pooled slots recycled through a
// free list, and the calendar itself is an inlined binary heap of slot
// indexes ordered by (time, sequence) — no container/heap interface
// boxing, no per-Schedule heap allocation. Sequence numbers break ties
// so that two events scheduled for the same instant fire in scheduling
// order, which makes every run bit-for-bit reproducible — a property
// the experiment harness depends on.
//
// Handles returned by Schedule/At carry a generation counter: once an
// event fires (or its cancelled slot is collected) the slot is recycled
// and the generation bumped, so a stale handle can never cancel the
// slot's next occupant.
package sim

import (
	"fmt"
	"math"
)

// Engine is a discrete-event simulator. The zero value is ready to use
// with the clock at 0.
type Engine struct {
	now  float64
	seq  uint64
	slab []slot
	free []int32 // recycled slot indexes
	heap []int32 // binary heap of slot indexes ordered by (time, seq)
}

// slot is the pooled storage of one scheduled event.
type slot struct {
	time      float64
	seq       uint64
	fn        func()    // either fn ...
	afn       func(any) // ... or afn(arg) runs at fire time
	arg       any
	gen       uint32
	cancelled bool
}

// Event is a handle to a scheduled callback, returned by Schedule/At so
// the caller can cancel it before it fires (e.g. a pending stage
// completion invalidated by a remap). It is a small value — copying it
// is free and never allocates. The zero Event is inert: Cancel and
// Cancelled are no-ops on it.
type Event struct {
	eng  *Engine
	idx  int32
	gen  uint32
	time float64
}

// Time returns the virtual time at which the event fires (or would have
// fired, if cancelled).
func (e Event) Time() float64 { return e.time }

// Cancel prevents the event from firing. Cancelling an already-fired,
// already-cancelled, or zero event is a no-op: the generation counter
// in the handle detects that the slot has moved on to a later event.
// Cancel is O(1); the cancelled slot is truly removed from the calendar
// and recycled when it surfaces at the head of the heap.
func (e Event) Cancel() {
	if e.eng == nil || e.idx < 0 || int(e.idx) >= len(e.eng.slab) {
		return
	}
	s := &e.eng.slab[e.idx]
	if s.gen != e.gen {
		return // slot recycled: this handle's event already fired or was collected
	}
	s.cancelled = true
	// Drop callback references eagerly so cancelled events do not pin
	// memory while they wait to surface from the heap.
	s.fn, s.afn, s.arg = nil, nil, nil
}

// Cancelled reports whether the event is cancelled and still occupies
// its calendar slot. Once the slot is collected (lazily, when the
// cancelled event surfaces) or the event has fired, it reports false.
func (e Event) Cancelled() bool {
	if e.eng == nil || e.idx < 0 || int(e.idx) >= len(e.eng.slab) {
		return false
	}
	s := &e.eng.slab[e.idx]
	return s.gen == e.gen && s.cancelled
}

// Pending reports whether the event is still scheduled to fire.
func (e Event) Pending() bool {
	if e.eng == nil || e.idx < 0 || int(e.idx) >= len(e.eng.slab) {
		return false
	}
	s := &e.eng.slab[e.idx]
	return s.gen == e.gen && !s.cancelled
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule queues fn to run after delay seconds of virtual time.
// It panics on negative delay or NaN.
func (e *Engine) Schedule(delay float64, fn func()) Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute virtual time t. It panics if t is in
// the past: the simulated grid never time-travels, and silently
// clamping would hide scheduling bugs in the executor.
func (e *Engine) At(t float64, fn func()) Event {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	return e.schedule(t, fn, nil, nil)
}

// ScheduleArg queues fn(arg) to run after delay seconds. It is the
// allocation-free alternative to Schedule for hot paths: a caller can
// bind fn once and pass per-event state through arg (a pointer in an
// interface does not allocate), instead of building a fresh closure per
// event.
func (e *Engine) ScheduleArg(delay float64, fn func(arg any), arg any) Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: ScheduleArg with invalid delay %v", delay))
	}
	return e.AtArg(e.now+delay, fn, arg)
}

// AtArg queues fn(arg) to run at absolute virtual time t; the argument
// variant of At, with the same validation.
func (e *Engine) AtArg(t float64, fn func(arg any), arg any) Event {
	if fn == nil {
		panic("sim: AtArg with nil callback")
	}
	return e.schedule(t, nil, fn, arg)
}

func (e *Engine) schedule(t float64, fn func(), afn func(any), arg any) Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: At(%v) before now=%v", t, e.now))
	}
	idx := e.alloc()
	s := &e.slab[idx]
	s.time = t
	s.seq = e.seq
	s.fn, s.afn, s.arg = fn, afn, arg
	s.cancelled = false
	e.seq++
	e.heapPush(idx)
	return Event{eng: e, idx: idx, gen: s.gen, time: t}
}

// alloc takes a slot from the free list, growing the slab only when
// every slot is in use.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.slab = append(e.slab, slot{gen: 1})
	return int32(len(e.slab) - 1)
}

// collect recycles a slot: the generation bump invalidates every
// outstanding handle to it before it re-enters the free list.
func (e *Engine) collect(idx int32) {
	s := &e.slab[idx]
	s.gen++
	s.fn, s.afn, s.arg = nil, nil, nil
	s.cancelled = false
	e.free = append(e.free, idx)
}

// Step fires the next event. It reports false when the calendar is
// empty.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		idx := e.heap[0]
		s := &e.slab[idx]
		if s.cancelled {
			e.heapPop()
			e.collect(idx)
			continue
		}
		e.now = s.time
		fn, afn, arg := s.fn, s.afn, s.arg
		e.heapPop()
		// Recycle before firing so the callback can reuse the slot for
		// whatever it schedules next.
		e.collect(idx)
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run fires events until the calendar is empty and returns the final
// virtual time.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time <= t, then advances the clock to t
// (even if no event fired). Events scheduled exactly at t do fire.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now=%v", t, e.now))
	}
	for {
		tm, ok := e.peek()
		if !ok || tm > t {
			break
		}
		e.Step()
	}
	e.now = t
}

// peek returns the time of the next non-cancelled event, lazily
// collecting cancelled ones.
func (e *Engine) peek() (float64, bool) {
	for len(e.heap) > 0 {
		idx := e.heap[0]
		s := &e.slab[idx]
		if !s.cancelled {
			return s.time, true
		}
		e.heapPop()
		e.collect(idx)
	}
	return 0, false
}

// NextEventTime returns the time of the next pending event and true, or
// 0 and false when the calendar is empty.
func (e *Engine) NextEventTime() (float64, bool) { return e.peek() }

// Reset returns the engine to its zero state — clock at 0, empty
// calendar — while keeping the slab, heap, and free-list capacity, so
// one engine can be reused across experiment repetitions without
// re-allocating its event storage. Every outstanding handle is
// invalidated (their slots' generations are bumped), so a pre-Reset
// Event can neither fire nor cancel anything scheduled afterwards.
func (e *Engine) Reset() {
	e.free = e.free[:0]
	for i := len(e.slab) - 1; i >= 0; i-- {
		s := &e.slab[i]
		s.gen++
		s.fn, s.afn, s.arg = nil, nil, nil
		s.cancelled = false
		e.free = append(e.free, int32(i))
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
}

// before orders slots by (time, seq): the calendar's total order.
func (e *Engine) before(a, b int32) bool {
	sa, sb := &e.slab[a], &e.slab[b]
	if sa.time != sb.time {
		return sa.time < sb.time
	}
	return sa.seq < sb.seq
}

// heapPush inserts a slot index, sifting up. Inlined binary heap: no
// interface dispatch on the hot path.
func (e *Engine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// heapPop removes the root, sifting down.
func (e *Engine) heapPop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && e.before(e.heap[r], e.heap[l]) {
			least = r
		}
		if !e.before(e.heap[least], e.heap[i]) {
			break
		}
		e.heap[i], e.heap[least] = e.heap[least], e.heap[i]
		i = least
	}
}

// Ticker invokes a callback at a fixed virtual-time period until
// stopped. The adaptivity engine's periodic trigger is a Ticker.
type Ticker struct {
	engine  *Engine
	period  float64
	fn      func(now float64)
	next    Event
	stopped bool
}

// NewTicker starts a ticker firing every period seconds, first at
// now+period. It panics on non-positive period.
func NewTicker(e *Engine, period float64, fn func(now float64)) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

// tickerFire is the shared tick trampoline: one bound function for all
// tickers keeps each tick allocation-free.
func tickerFire(arg any) {
	t := arg.(*Ticker)
	if t.stopped {
		return
	}
	t.fn(t.engine.Now())
	if !t.stopped {
		t.arm()
	}
}

func (t *Ticker) arm() {
	t.next = t.engine.ScheduleArg(t.period, tickerFire, t)
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.next.Cancel()
}
