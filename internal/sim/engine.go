// Package sim implements the deterministic discrete-event simulation
// engine that drives every grid experiment in virtual time.
//
// The engine is a classic event-calendar design: a priority queue of
// (time, sequence, callback) events. Sequence numbers break ties so
// that two events scheduled for the same instant fire in scheduling
// order, which makes every run bit-for-bit reproducible — a property
// the experiment harness depends on.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event simulator. The zero value is ready to use
// with the clock at 0.
type Engine struct {
	now   float64
	seq   uint64
	queue eventHeap
}

// Event is a scheduled callback. It is returned by Schedule/At so the
// caller can cancel it before it fires (e.g. a pending stage completion
// invalidated by a remap).
type Event struct {
	time      float64
	seq       uint64
	fn        func()
	index     int // heap index; -1 when not queued
	cancelled bool
}

// Time returns the virtual time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) Time() float64 { return e.time }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancelled events are dropped
// lazily when they surface from the queue.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancelled }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay seconds of virtual time.
// It panics on negative delay or NaN.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute virtual time t. It panics if t is in
// the past: the simulated grid never time-travels, and silently
// clamping would hide scheduling bugs in the executor.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: At(%v) before now=%v", t, e.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Step fires the next event. It reports false when the calendar is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.time
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the calendar is empty and returns the final
// virtual time.
func (e *Engine) Run() float64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time <= t, then advances the clock to t
// (even if no event fired). Events scheduled exactly at t do fire.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now=%v", t, e.now))
	}
	for {
		ev := e.peek()
		if ev == nil || ev.time > t {
			break
		}
		e.Step()
	}
	e.now = t
}

// peek returns the next non-cancelled event without firing it, lazily
// discarding cancelled ones.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// NextEventTime returns the time of the next pending event and true, or
// 0 and false when the calendar is empty.
func (e *Engine) NextEventTime() (float64, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.time, true
}

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Ticker invokes a callback at a fixed virtual-time period until
// stopped. The adaptivity engine's periodic trigger is a Ticker.
type Ticker struct {
	engine  *Engine
	period  float64
	fn      func(now float64)
	next    *Event
	stopped bool
}

// NewTicker starts a ticker firing every period seconds, first at
// now+period. It panics on non-positive period.
func NewTicker(e *Engine, period float64, fn func(now float64)) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.next = t.engine.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn(t.engine.Now())
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
	}
}
