// Package gridpipe is an adaptive parallel pipeline pattern for grids:
// a pipeline skeleton whose stages can be replicated and re-mapped at
// run time in response to changing resource performance.
//
// The package offers two execution modes over one pipeline definition:
//
//   - Live: the stages are real Go functions executed by goroutines on
//     the local machine with dynamic per-stage parallelism
//     (SetReplicas), preserving eSkel Pipeline1for1 semantics — one
//     output per input, in input order.
//
//   - Simulated: the pipeline's cost structure (per-stage service
//     demand and message sizes) is executed on a modelled grid of
//     heterogeneous, dynamically loaded nodes in virtual time, with the
//     full adaptivity engine (monitor → forecast → model → remap).
//     This is how the repository reproduces the paper's experiments;
//     see DESIGN.md.
//
// Quick start:
//
//	p, _ := gridpipe.New(
//	    gridpipe.Stage("parse", parseFn, gridpipe.Weight(0.02)),
//	    gridpipe.Stage("align", alignFn, gridpipe.Weight(0.35),
//	        gridpipe.Replicable(), gridpipe.Replicas(4)),
//	    gridpipe.Stage("score", scoreFn, gridpipe.Weight(0.05)),
//	)
//	out, err := p.Process(ctx, inputs)        // live
//	rep, err := p.Simulate(grid, opts)        // simulated
package gridpipe

import (
	"context"
	"fmt"

	"gridpipe/internal/model"
	"gridpipe/internal/pipeline"
)

// StageFunc is the computation of one live stage. It must be safe for
// concurrent invocation when the stage is replicated.
type StageFunc = pipeline.Func

// StageDef describes one stage. Build with Stage.
type StageDef struct {
	name       string
	fn         StageFunc
	weight     float64
	outBytes   float64
	replicable bool
	replicas   int
	buffer     int
}

// StageOpt customises a stage definition.
type StageOpt func(*StageDef)

// Weight declares the stage's mean per-item service demand in
// reference-seconds (seconds on an unloaded speed-1 processor). It
// drives the simulation and the mapping model; the live mode measures
// real durations instead.
func Weight(w float64) StageOpt { return func(s *StageDef) { s.weight = w } }

// OutBytes declares the size of the message each output sends to the
// next stage (simulation only).
func OutBytes(b float64) StageOpt { return func(s *StageDef) { s.outBytes = b } }

// Replicable marks the stage as stateless, allowing the adaptivity
// engine to farm it across nodes (and the live mode to run it with
// multiple workers).
func Replicable() StageOpt { return func(s *StageDef) { s.replicable = true } }

// Replicas sets the live mode's initial worker count (default 1).
func Replicas(n int) StageOpt { return func(s *StageDef) { s.replicas = n } }

// Buffer sets the stage's live input-buffer capacity (default 1).
func Buffer(n int) StageOpt { return func(s *StageDef) { s.buffer = n } }

// Stage builds a stage definition. fn may be nil for simulation-only
// pipelines.
func Stage(name string, fn StageFunc, opts ...StageOpt) StageDef {
	s := StageDef{name: name, fn: fn, weight: 0.1, replicas: 1, buffer: 1}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// Pipeline is a pipeline definition runnable live or in simulation.
type Pipeline struct {
	defs []StageDef
	spec model.PipelineSpec
	live *pipeline.Pipeline // built lazily; single-use
}

// New validates the stage definitions and builds a pipeline.
func New(stages ...StageDef) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("gridpipe: no stages")
	}
	p := &Pipeline{defs: append([]StageDef(nil), stages...)}
	for i, s := range p.defs {
		if s.name == "" {
			return nil, fmt.Errorf("gridpipe: stage %d has no name", i)
		}
		if s.weight <= 0 {
			return nil, fmt.Errorf("gridpipe: stage %q has non-positive weight", s.name)
		}
		p.spec.Stages = append(p.spec.Stages, model.StageSpec{
			Name:       s.name,
			Work:       s.weight,
			OutBytes:   s.outBytes,
			Replicable: s.replicable,
		})
	}
	return p, nil
}

// NumStages returns the stage count.
func (p *Pipeline) NumStages() int { return len(p.defs) }

// buildLive constructs the single-use live pipeline.
func (p *Pipeline) buildLive() (*pipeline.Pipeline, error) {
	if p.live != nil {
		return nil, fmt.Errorf("gridpipe: live pipeline already running (single-use)")
	}
	var stages []pipeline.Stage
	for _, s := range p.defs {
		if s.fn == nil {
			return nil, fmt.Errorf("gridpipe: stage %q has no function (simulation-only pipeline?)", s.name)
		}
		reps := s.replicas
		if !s.replicable {
			reps = 1
		}
		stages = append(stages, pipeline.Stage{
			Name: s.name, Fn: s.fn, Replicas: reps, Buffer: s.buffer,
		})
	}
	lp, err := pipeline.New(stages...)
	if err != nil {
		return nil, err
	}
	p.live = lp
	return lp, nil
}

// Process runs the pipeline live over the inputs and returns outputs in
// input order.
func (p *Pipeline) Process(ctx context.Context, inputs []any) ([]any, error) {
	lp, err := p.buildLive()
	if err != nil {
		return nil, err
	}
	return lp.Process(ctx, inputs)
}

// Run starts the pipeline live over a stream. See
// internal/pipeline.Pipeline.Run for channel semantics.
func (p *Pipeline) Run(ctx context.Context, inputs <-chan any) (<-chan any, <-chan error, error) {
	lp, err := p.buildLive()
	if err != nil {
		return nil, nil, err
	}
	out, errs := lp.Run(ctx, inputs)
	return out, errs, nil
}

// SetReplicas adjusts a running live stage's worker limit.
func (p *Pipeline) SetReplicas(stage, n int) error {
	if p.live == nil {
		return fmt.Errorf("gridpipe: pipeline not running live")
	}
	return p.live.SetReplicas(stage, n)
}

// LiveStats snapshots per-stage live counters (nil if not running
// live).
func (p *Pipeline) LiveStats() []pipeline.StageStats {
	if p.live == nil {
		return nil
	}
	return p.live.Stats()
}
