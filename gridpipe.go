// Package gridpipe is an adaptive parallel pipeline pattern for grids:
// a pipeline skeleton whose stages can be replicated and re-mapped at
// run time in response to changing resource performance.
//
// The package offers two execution modes over one pipeline definition:
//
//   - Live: the stages are real Go functions executed by goroutines on
//     the local machine with dynamic per-stage parallelism
//     (SetReplicas), preserving eSkel Pipeline1for1 semantics — one
//     output per input, in input order.
//
//   - Simulated: the pipeline's cost structure (per-stage service
//     demand and message sizes) is executed on a modelled grid of
//     heterogeneous, dynamically loaded nodes in virtual time, with the
//     full adaptivity engine (monitor → forecast → model → remap).
//     This is how the repository reproduces the paper's experiments;
//     see DESIGN.md.
//
// Quick start:
//
//	p, _ := gridpipe.New(
//	    gridpipe.Stage("parse", parseFn, gridpipe.Weight(0.02)),
//	    gridpipe.Stage("align", alignFn, gridpipe.Weight(0.35),
//	        gridpipe.Replicable(), gridpipe.Replicas(4)),
//	    gridpipe.Stage("score", scoreFn, gridpipe.Weight(0.05)),
//	)
//	out, err := p.Process(ctx, inputs)        // live
//	rep, err := p.Simulate(grid, opts)        // simulated
//
// Pipelines need not be linear: Split fans an item out over parallel
// branches and Merge joins the branch results back into one item, so
// diamond-shaped flows run (and simulate, and adapt) like chains do.
// A Merge stage's function receives a []any holding one part per
// branch, in branch order:
//
//	p, _ := gridpipe.New(
//	    gridpipe.Stage("decode", decodeFn, gridpipe.Weight(0.05)),
//	    gridpipe.Split(
//	        gridpipe.Branch(gridpipe.Stage("audio", audioFn, gridpipe.Weight(0.1))),
//	        gridpipe.Branch(gridpipe.Stage("video", videoFn, gridpipe.Weight(0.3),
//	            gridpipe.Replicable(), gridpipe.Replicas(2))),
//	    ),
//	    gridpipe.Merge("mux", func(ctx context.Context, v any) (any, error) {
//	        parts := v.([]any) // [audio result, video result]
//	        return mux(parts[0], parts[1]), nil
//	    }, gridpipe.Weight(0.02)),
//	)
//
// Both execution modes route along the same stage graph
// (internal/topo): live branches run concurrently on goroutines;
// simulated branches occupy their mapped grid nodes concurrently and
// the adaptivity engine remaps them like any other stage.
package gridpipe

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/adaptive/liveadapt"
	"gridpipe/internal/model"
	"gridpipe/internal/pipeline"
	"gridpipe/internal/topo"
)

// StageFunc is the computation of one live stage. It must be safe for
// concurrent invocation when the stage is replicated. A Merge stage's
// function receives a []any with one part per branch, in branch order.
type StageFunc = pipeline.Func

// stageKind discriminates the definition forms New accepts.
type stageKind int

const (
	kindStage stageKind = iota
	kindSplit
	kindMerge
)

// StageDef describes one stage (or a Split of branches). Build with
// Stage, Split, or Merge.
type StageDef struct {
	name       string
	fn         StageFunc
	weight     float64
	outBytes   float64
	replicable bool
	replicas   int
	buffer     int

	kind     stageKind
	branches []BranchDef // kindSplit only
}

// BranchDef is one parallel branch of a Split: a chain of stages.
// Build with Branch.
type BranchDef []StageDef

// StageOpt customises a stage definition.
type StageOpt func(*StageDef)

// Weight declares the stage's mean per-item service demand in
// reference-seconds (seconds on an unloaded speed-1 processor). It
// drives the simulation and the mapping model; the live mode measures
// real durations instead.
func Weight(w float64) StageOpt { return func(s *StageDef) { s.weight = w } }

// OutBytes declares the size of the message each output sends to the
// next stage (simulation only). A Split broadcasts the producing
// stage's message to every branch.
func OutBytes(b float64) StageOpt { return func(s *StageDef) { s.outBytes = b } }

// Replicable marks the stage as stateless, allowing the adaptivity
// engine to farm it across nodes (and the live mode to run it with
// multiple workers).
func Replicable() StageOpt { return func(s *StageDef) { s.replicable = true } }

// Replicas sets the live mode's initial worker count (default 1).
// Values above 1 require Replicable.
func Replicas(n int) StageOpt { return func(s *StageDef) { s.replicas = n } }

// Buffer sets the stage's live input-buffer capacity (default 1).
func Buffer(n int) StageOpt { return func(s *StageDef) { s.buffer = n } }

// Stage builds a stage definition. fn may be nil for simulation-only
// pipelines.
func Stage(name string, fn StageFunc, opts ...StageOpt) StageDef {
	s := StageDef{name: name, fn: fn, weight: 0.1, replicas: 1, buffer: 1}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// Branch groups a chain of stages into one parallel branch of a Split.
func Branch(stages ...StageDef) BranchDef { return BranchDef(stages) }

// Split fans the preceding stage's output over two or more parallel
// branches; each branch receives every item. A Split must be followed
// by a Merge, which joins the branch results back into one item.
func Split(branches ...BranchDef) StageDef {
	return StageDef{kind: kindSplit, branches: branches}
}

// Merge builds the fan-in stage closing a Split. Its function receives
// a []any holding one part per branch, in branch order, and returns
// the joined item.
func Merge(name string, fn StageFunc, opts ...StageOpt) StageDef {
	s := Stage(name, fn, opts...)
	s.kind = kindMerge
	return s
}

// Pipeline is a pipeline definition runnable live or in simulation.
type Pipeline struct {
	defs  []StageDef  // flattened, in topological order
	graph *topo.Graph // data-flow over the flattened stages
	spec  model.PipelineSpec

	// mu guards the live build/adaptive state below: the live pipeline
	// is single-use, and concurrent Run/Process callers racing past an
	// unguarded nil check would both "win". With the lock, the second
	// caller gets a clear single-use error instead of a corrupted run.
	mu       sync.Mutex
	live     *pipeline.Pipeline    // built lazily; single-use
	liveCfg  *liveadapt.Config     // set by WithLiveAdaptive
	liveCtrl *liveadapt.Controller // built when Run starts
	batchN   int                   // WithBatch grain (0 off, GrainAuto walked)
	batchOpt BatchOptions
}

// GrainAuto, passed to WithBatch, hands the batch size to the live
// adaptive controller: the grain starts at 1 and is walked up and down
// (doubling/halving under the controller's hysteresis and cooldown) to
// whatever the observed throughput supports — the paper's granularity
// adaptation as a second actuator next to replica counts. Requires
// WithLiveAdaptive with a non-static policy.
const GrainAuto = -1

// BatchOptions tunes WithBatch beyond the grain itself.
type BatchOptions struct {
	// Linger bounds how long a partial batch may wait for more input
	// at the pipeline head before being flushed anyway (default 1 ms),
	// so trickle inputs keep bounded latency at any grain.
	Linger time.Duration
	// Max bounds the grain the auto mode may walk to (default 256).
	Max int
}

// WithBatch makes batches of up to n items the unit crossing stage
// boundaries in the live mode, amortizing the per-transfer channel and
// scheduling overhead over n items. Ordered output is unchanged —
// batching is invisible except in throughput and (up to Linger)
// latency. Pass GrainAuto to let the live adaptive controller choose n
// at run time. Must be called before Run/Process.
func (p *Pipeline) WithBatch(n int, opts ...BatchOptions) error {
	if n != GrainAuto && n < 1 {
		return fmt.Errorf("gridpipe: WithBatch(%d): grain must be ≥ 1 or GrainAuto", n)
	}
	var o BatchOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Max < 0 {
		return fmt.Errorf("gridpipe: WithBatch: negative Max %d", o.Max)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.live != nil {
		return fmt.Errorf("gridpipe: WithBatch after the live pipeline started")
	}
	p.batchN = n
	p.batchOpt = o
	if n > 1 {
		// Rate simulated/model predictions at the same grain.
		p.spec.Grain = n
	}
	return nil
}

// New validates the stage definitions and builds a pipeline. Stage
// names must be unique; Replicas and Buffer must be positive; more
// than one replica requires Replicable.
func New(stages ...StageDef) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("gridpipe: no stages")
	}
	p := &Pipeline{}
	names := map[string]bool{}
	var edges []topo.Edge

	// addStage validates and appends one flattened stage, wiring edges
	// from the given predecessors, and returns its index.
	addStage := func(s StageDef, preds []int) (int, error) {
		if s.name == "" {
			return 0, fmt.Errorf("gridpipe: stage %d has no name", len(p.defs))
		}
		if names[s.name] {
			return 0, fmt.Errorf("gridpipe: duplicate stage name %q", s.name)
		}
		names[s.name] = true
		if s.weight <= 0 {
			return 0, fmt.Errorf("gridpipe: stage %q has non-positive weight %v", s.name, s.weight)
		}
		if s.replicas <= 0 {
			return 0, fmt.Errorf("gridpipe: stage %q has non-positive replicas %d", s.name, s.replicas)
		}
		if s.replicas > 1 && !s.replicable {
			return 0, fmt.Errorf("gridpipe: stage %q has %d replicas but is not Replicable", s.name, s.replicas)
		}
		if s.buffer <= 0 {
			return 0, fmt.Errorf("gridpipe: stage %q has non-positive buffer %d", s.name, s.buffer)
		}
		idx := len(p.defs)
		p.defs = append(p.defs, s)
		for _, pr := range preds {
			edges = append(edges, topo.Edge{From: pr, To: idx, Bytes: p.defs[pr].outBytes})
		}
		return idx, nil
	}

	// frontier holds the stage indices whose out-edges attach to the
	// next definition; more than one means we are inside a split.
	var frontier []int
	for _, def := range stages {
		switch def.kind {
		case kindSplit:
			if len(p.defs) == 0 {
				return nil, fmt.Errorf("gridpipe: pipeline cannot start with a Split")
			}
			if len(frontier) != 1 {
				return nil, fmt.Errorf("gridpipe: nested Split (close the previous one with Merge first)")
			}
			if len(def.branches) < 2 {
				return nil, fmt.Errorf("gridpipe: Split needs at least 2 branches, got %d", len(def.branches))
			}
			head := frontier[0]
			frontier = frontier[:0]
			for bi, br := range def.branches {
				if len(br) == 0 {
					return nil, fmt.Errorf("gridpipe: Split branch %d is empty", bi)
				}
				prev := head
				for _, bs := range br {
					if bs.kind != kindStage {
						return nil, fmt.Errorf("gridpipe: branch %d contains a nested Split/Merge", bi)
					}
					idx, err := addStage(bs, []int{prev})
					if err != nil {
						return nil, err
					}
					prev = idx
				}
				frontier = append(frontier, prev)
			}
		case kindMerge:
			if len(frontier) < 2 {
				return nil, fmt.Errorf("gridpipe: Merge %q without a preceding Split", def.name)
			}
			idx, err := addStage(def, frontier)
			if err != nil {
				return nil, err
			}
			frontier = []int{idx}
		default:
			if len(frontier) > 1 {
				return nil, fmt.Errorf("gridpipe: stage %q follows a Split; close it with Merge", def.name)
			}
			idx, err := addStage(def, frontier)
			if err != nil {
				return nil, err
			}
			frontier = []int{idx}
		}
	}
	if len(frontier) != 1 {
		return nil, fmt.Errorf("gridpipe: pipeline ends inside a Split; add a Merge")
	}

	tstages := make([]topo.Stage, len(p.defs))
	for i, s := range p.defs {
		tstages[i] = topo.Stage{
			Name:       s.name,
			Work:       s.weight,
			OutBytes:   s.outBytes,
			Replicable: s.replicable,
		}
	}
	g, err := topo.New(tstages, edges)
	if err != nil {
		return nil, fmt.Errorf("gridpipe: %w", err)
	}
	p.graph = g
	spec, err := model.FromGraph(g, 0)
	if err != nil {
		return nil, fmt.Errorf("gridpipe: %w", err)
	}
	p.spec = spec
	return p, nil
}

// NumStages returns the stage count (flattened: branch stages count
// individually, in declaration order).
func (p *Pipeline) NumStages() int { return len(p.defs) }

// Graph returns the pipeline's stage graph.
func (p *Pipeline) Graph() *topo.Graph { return p.graph }

// buildLive constructs the single-use live pipeline. The caller must
// hold p.mu.
func (p *Pipeline) buildLive() (*pipeline.Pipeline, error) {
	if p.live != nil {
		return nil, fmt.Errorf("gridpipe: live pipeline already running (single-use)")
	}
	stages := make([]pipeline.Stage, len(p.defs))
	for i, s := range p.defs {
		if s.fn == nil {
			return nil, fmt.Errorf("gridpipe: stage %q has no function (simulation-only pipeline?)", s.name)
		}
		reps := s.replicas
		if !s.replicable {
			reps = 1
		}
		stages[i] = pipeline.Stage{
			Name: s.name, Fn: s.fn, Replicas: reps, Buffer: s.buffer,
		}
	}
	lp, err := pipeline.NewGraph(stages, p.graph.Edges)
	if err != nil {
		return nil, err
	}
	if p.batchN != 0 {
		grain := p.batchN
		if grain == GrainAuto {
			if p.liveCfg == nil || p.liveCfg.Policy == adaptive.PolicyStatic {
				return nil, fmt.Errorf("gridpipe: WithBatch(GrainAuto) needs WithLiveAdaptive with a non-static policy")
			}
			grain = 1 // the controller walks it from here
			p.liveCfg.AdaptGrain = true
			p.liveCfg.MaxGrain = p.batchOpt.Max
		}
		if err := lp.EnableBatch(grain, p.batchOpt.Linger); err != nil {
			return nil, err
		}
	}
	p.live = lp
	return lp, nil
}

// LiveAdaptiveOptions tunes WithLiveAdaptive. The zero value picks the
// live controller's defaults.
type LiveAdaptiveOptions struct {
	// Interval is the wall-clock sensing/decision period
	// (default 250 ms).
	Interval time.Duration
	// MaxWorkers is the total worker budget across all stages
	// (default 2×GOMAXPROCS) — the reserve capacity the controller may
	// fold in when throughput degrades.
	MaxWorkers int
	// HysteresisGain is the minimum predicted throughput ratio
	// new/current required to resize (default 1.15).
	HysteresisGain float64
	// Cooldown is the minimum wall time between two resizes
	// (default 2×Interval).
	Cooldown time.Duration
}

// WithLiveAdaptive arms run-time adaptation for the live execution
// mode: when Run (or Process) starts the pipeline, a wall-clock
// controller samples each stage's service times, feeds the same
// forecast/trigger machinery the simulator uses, and rebalances the
// per-stage worker pools via SetReplicas under a fixed budget — the
// paper's self-adaptation claim, on real goroutines under real CPU
// contention. policy is one of the Policy* constants ("static" leaves
// the controller inert; "oracle" is simulation-only). Must be called
// before Run.
func (p *Pipeline) WithLiveAdaptive(policy string, opts ...LiveAdaptiveOptions) error {
	pol, err := parsePolicy(policy)
	if err != nil {
		return err
	}
	if pol == adaptive.PolicyOracle {
		return fmt.Errorf("gridpipe: policy %q is simulation-only (no ground-truth loads live)", policy)
	}
	var o LiveAdaptiveOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.live != nil {
		return fmt.Errorf("gridpipe: WithLiveAdaptive after the live pipeline started")
	}
	p.liveCfg = &liveadapt.Config{
		Policy:         pol,
		Interval:       o.Interval,
		MaxWorkers:     o.MaxWorkers,
		HysteresisGain: o.HysteresisGain,
		Cooldown:       o.Cooldown,
	}
	return nil
}

// withLiveBudget arms live adaptation with a cluster-provided config
// (shared worker budget included). An explicit WithLiveAdaptive keeps
// its policy and thresholds; only the budget hook is injected.
func (p *Pipeline) withLiveBudget(cfg liveadapt.Config) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.live != nil {
		return fmt.Errorf("gridpipe: cluster Process after the live pipeline started")
	}
	if p.liveCfg != nil {
		p.liveCfg.BudgetCap = cfg.BudgetCap
		p.liveCfg.MaxWorkers = cfg.MaxWorkers
		return nil
	}
	p.liveCfg = &cfg
	return nil
}

// liveStageInfo projects the stage definitions for the live controller.
func (p *Pipeline) liveStageInfo() []liveadapt.StageInfo {
	info := make([]liveadapt.StageInfo, len(p.defs))
	for i, s := range p.defs {
		info[i] = liveadapt.StageInfo{Name: s.name, Weight: s.weight, Replicable: s.replicable}
	}
	return info
}

// Process runs the pipeline live over the inputs and returns outputs in
// input order.
func (p *Pipeline) Process(ctx context.Context, inputs []any) ([]any, error) {
	// One critical section for the config check and the build: a
	// concurrent WithLiveAdaptive cannot slip in between and be
	// silently ignored.
	p.mu.Lock()
	if p.liveCfg == nil {
		lp, err := p.buildLive()
		p.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return lp.Process(ctx, inputs)
	}
	p.mu.Unlock()
	// Run is wired before the feeder starts: if Run refuses (say, an
	// unreplicable pipeline under an adaptive policy) the feeder must
	// not be left blocked on a channel nobody will ever read.
	in := make(chan any)
	out, errs, err := p.Run(ctx, in)
	if err != nil {
		close(in)
		return nil, err
	}
	go func() {
		defer close(in)
		for _, v := range inputs {
			select {
			case in <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	var results []any
	for v := range out {
		results = append(results, v)
	}
	if err := <-errs; err != nil {
		return nil, err
	}
	if len(results) != len(inputs) {
		return nil, fmt.Errorf("gridpipe: %d outputs for %d inputs", len(results), len(inputs))
	}
	return results, nil
}

// Run starts the pipeline live over a stream. See
// internal/pipeline.Pipeline.Run for channel semantics. With
// WithLiveAdaptive configured, the adaptation loop starts with the
// pipeline and stops when the output drains.
func (p *Pipeline) Run(ctx context.Context, inputs <-chan any) (<-chan any, <-chan error, error) {
	p.mu.Lock()
	lp, err := p.buildLive()
	if err != nil {
		p.mu.Unlock()
		return nil, nil, err
	}
	cfg := p.liveCfg
	p.mu.Unlock()
	if cfg == nil {
		out, errs := lp.Run(ctx, inputs)
		return out, errs, nil
	}
	ctrl, err := liveadapt.ForPipeline(lp, p.liveStageInfo(), *cfg)
	if err != nil {
		return nil, nil, err
	}
	p.mu.Lock()
	p.liveCtrl = ctrl
	p.mu.Unlock()
	out, errs := lp.Run(ctx, inputs)
	ctrl.Start()
	tapped := make(chan any)
	go func() {
		defer close(tapped)
		defer ctrl.Stop()
		for v := range out {
			ctrl.NoteCompletion()
			select {
			case tapped <- v:
			case <-ctx.Done():
				// Keep draining so the inner pipeline can shut down.
			}
		}
	}()
	return tapped, errs, nil
}

// LiveAdaptationEvent is one live resize decision.
type LiveAdaptationEvent struct {
	// Time is seconds since the live run started.
	Time float64
	// From and To render the worker-count vectors.
	From, To string
	// PredictedOld and PredictedNew are the controller's throughput
	// estimates (items/s) before and after the resize.
	PredictedOld, PredictedNew float64
}

// LiveAdaptiveReport summarises the live controller's activity.
type LiveAdaptiveReport struct {
	// Ticks, Searches, and Resizes count decision rounds, planning
	// rounds, and actual reconfigurations.
	Ticks, Searches, Resizes int
	Events                   []LiveAdaptationEvent
	// Replicas is the current per-stage worker vector (flattened
	// declaration order).
	Replicas []int
	// Grain is the current boundary batch size (1 when batching is
	// off; walked by the controller under WithBatch(GrainAuto)).
	Grain int
}

// LiveAdaptiveReport returns the live controller's activity so far
// (zero value when WithLiveAdaptive was not configured or Run has not
// started).
func (p *Pipeline) LiveAdaptiveReport() LiveAdaptiveReport {
	p.mu.Lock()
	ctrl := p.liveCtrl
	p.mu.Unlock()
	if ctrl == nil {
		return LiveAdaptiveReport{}
	}
	st := ctrl.Stats()
	rep := LiveAdaptiveReport{
		Ticks:    st.Ticks,
		Searches: st.Searches,
		Resizes:  st.Remaps,
		Replicas: ctrl.Replicas(),
		Grain:    ctrl.Grain(),
	}
	for _, ev := range st.Events {
		rep.Events = append(rep.Events, LiveAdaptationEvent{
			Time:         ev.Time,
			From:         ev.From.String(),
			To:           ev.To.String(),
			PredictedOld: ev.PredictedOld,
			PredictedNew: ev.PredictedNew,
		})
	}
	return rep
}

// SetReplicas adjusts a running live stage's worker limit. Stages are
// indexed in flattened declaration order (see Spec).
func (p *Pipeline) SetReplicas(stage, n int) error {
	p.mu.Lock()
	lp := p.live
	p.mu.Unlock()
	if lp == nil {
		return fmt.Errorf("gridpipe: pipeline not running live")
	}
	return lp.SetReplicas(stage, n)
}

// LiveStats snapshots per-stage live counters (nil if not running
// live).
func (p *Pipeline) LiveStats() []pipeline.StageStats {
	p.mu.Lock()
	lp := p.live
	p.mu.Unlock()
	if lp == nil {
		return nil
	}
	return lp.Stats()
}
