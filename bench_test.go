package gridpipe

// One testing.B benchmark per experiment in DESIGN.md's index: running
// `go test -bench=.` regenerates every table and figure of the
// reconstructed evaluation suite. Micro-benchmarks for the hot paths
// (live pipeline, simulator, model, CTMC solver) follow.

import (
	"context"
	"testing"

	"gridpipe/internal/bench"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/pipeline"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
	"gridpipe/internal/workload"
)

// benchExperiment runs one harness experiment per iteration and prints
// its tables once so the benchmark log doubles as the reproduced
// evaluation output.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		res, err := e.Run(42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.Log("\n" + last.String())
	}
}

func BenchmarkF1ThroughputTimeline(b *testing.B) { benchExperiment(b, "F1") }
func BenchmarkF2Speedup(b *testing.B)            { benchExperiment(b, "F2") }
func BenchmarkF3PerturbationSweep(b *testing.B)  { benchExperiment(b, "F3") }
func BenchmarkF4Replication(b *testing.B)        { benchExperiment(b, "F4") }
func BenchmarkF5Heterogeneity(b *testing.B)      { benchExperiment(b, "F5") }
func BenchmarkF6StageScalability(b *testing.B)   { benchExperiment(b, "F6") }
func BenchmarkT1Overhead(b *testing.B)           { benchExperiment(b, "T1") }
func BenchmarkT2ModelValidation(b *testing.B)    { benchExperiment(b, "T2") }
func BenchmarkT3Forecasters(b *testing.B)        { benchExperiment(b, "T3") }
func BenchmarkT4MappingSearch(b *testing.B)      { benchExperiment(b, "T4") }
func BenchmarkF7Saturation(b *testing.B)         { benchExperiment(b, "F7") }
func BenchmarkF8DiamondTopology(b *testing.B)    { benchExperiment(b, "F8") }
func BenchmarkF9Churn(b *testing.B)              { benchExperiment(b, "F9") }
func BenchmarkF10ElasticJoin(b *testing.B)       { benchExperiment(b, "F10") }
func BenchmarkF11LiveAdaptivity(b *testing.B)    { benchExperiment(b, "F11") }
func BenchmarkT5LatencyModel(b *testing.B)       { benchExperiment(b, "T5") }
func BenchmarkA1Triggers(b *testing.B)           { benchExperiment(b, "A1") }
func BenchmarkA2RemapProtocol(b *testing.B)      { benchExperiment(b, "A2") }
func BenchmarkA3Hysteresis(b *testing.B)         { benchExperiment(b, "A3") }

// --- hot-path micro-benchmarks ------------------------------------------

// The canonical hot-path micro-benchmarks live in internal/bench
// (Micros) so cmd/pipebench can run the same suite and emit
// BENCH_*.json; these wrappers expose each one to `go test -bench`.
// Run with -benchmem: the allocs/op columns are the numbers the
// acceptance gates track (see DESIGN.md, "Benchmark protocol").

func benchMicro(b *testing.B, name string) {
	m, err := bench.MicroByName(name)
	if err != nil {
		b.Fatal(err)
	}
	m.Run(b)
}

func BenchmarkEngineScheduleStep(b *testing.B)   { benchMicro(b, "engine/schedule_step") }
func BenchmarkEngineSeedCalendar(b *testing.B)   { benchMicro(b, "engine/seed_calendar") }
func BenchmarkEngineScheduleCancel(b *testing.B) { benchMicro(b, "engine/schedule_cancel") }
func BenchmarkPartitionWindow(b *testing.B)      { benchMicro(b, "engine/partition_window") }
func BenchmarkReorderStage(b *testing.B)         { benchMicro(b, "pipeline/reorder_stage") }
func BenchmarkBatchBoundary(b *testing.B)        { benchMicro(b, "pipeline/batch_boundary") }
func BenchmarkSeedReorderStage(b *testing.B)     { benchMicro(b, "pipeline/seed_reorder_stage") }
func BenchmarkFarmUnordered(b *testing.B)        { benchMicro(b, "farm/unordered") }
func BenchmarkExecRunItems(b *testing.B)         { benchMicro(b, "exec/run_items") }
func BenchmarkStealLocalPop(b *testing.B)        { benchMicro(b, "steal/local_pop") }
func BenchmarkStealStealHalf(b *testing.B)       { benchMicro(b, "steal/steal_half") }
func BenchmarkStealInject(b *testing.B)          { benchMicro(b, "steal/inject") }
func BenchmarkSchedSearch(b *testing.B)          { benchMicro(b, "sched/search") }
func BenchmarkClusterArbitrate(b *testing.B)     { benchMicro(b, "cluster/arbitrate") }
func BenchmarkArrivalNext(b *testing.B)          { benchMicro(b, "workload/arrival_next") }

// --- micro-benchmarks ---------------------------------------------------

// BenchmarkLivePipeline measures per-item overhead of the live skeleton
// (channels + reorder buffer) with trivial stages.
func BenchmarkLivePipeline(b *testing.B) {
	ident := func(ctx context.Context, v any) (any, error) { return v, nil }
	p, err := pipeline.New(
		pipeline.Stage{Name: "a", Fn: ident},
		pipeline.Stage{Name: "b", Fn: ident, Replicas: 4},
		pipeline.Stage{Name: "c", Fn: ident},
	)
	if err != nil {
		b.Fatal(err)
	}
	in := make(chan any, 64)
	out, errs := p.Run(context.Background(), in)
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			in <- i
		}
		close(in)
	}()
	count := 0
	for range out {
		count++
	}
	if err := <-errs; err != nil {
		b.Fatal(err)
	}
	if count != b.N {
		b.Fatalf("lost items: %d of %d", count, b.N)
	}
}

// BenchmarkSimExecutor measures simulated items per wall-clock second:
// the cost of one item moving through a 4-stage mapped pipeline in
// virtual time.
func BenchmarkSimExecutor(b *testing.B) {
	g, err := grid.Homogeneous(4, 1, grid.LANLink)
	if err != nil {
		b.Fatal(err)
	}
	spec := model.Balanced(4, 0.1, 1e5)
	b.ResetTimer()
	items := b.N
	if items < 10 {
		items = 10
	}
	eng := &sim.Engine{}
	e, err := exec.New(eng, g, spec, model.OneToOne(4), exec.Options{MaxInFlight: 16})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.RunItems(items); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkModelPredict measures one analytic evaluation of a mapping —
// the inner loop of every search strategy.
func BenchmarkModelPredict(b *testing.B) {
	g, err := grid.Homogeneous(8, 1, grid.LANLink)
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.Video().Spec
	m := model.FromNodes(0, 1, 2, 3, 4)
	loads := []float64{0.1, 0.2, 0, 0, 0.5, 0, 0.3, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Predict(g, spec, m, loads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalSearch measures a full mapping search on a mid-size
// instance — what one adaptation decision costs.
func BenchmarkLocalSearch(b *testing.B) {
	g, err := grid.Heterogeneous([]float64{1, 2, 1, 3, 1, 2, 1, 4}, grid.LANLink)
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.Video().Spec
	s := sched.LocalSearch{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Search(g, spec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCTMCSolve measures the exact tandem-line solution used in
// the T2 cross-check.
func BenchmarkCTMCSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := model.SolveTandem([]float64{10, 5, 10, 8}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscreteEventEngine measures raw event throughput of the
// simulation core.
func BenchmarkDiscreteEventEngine(b *testing.B) {
	var eng sim.Engine
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count < b.N {
			eng.Schedule(1, reschedule)
		}
	}
	eng.Schedule(1, reschedule)
	b.ResetTimer()
	eng.Run()
	if count < b.N {
		b.Fatalf("fired %d of %d", count, b.N)
	}
}

// BenchmarkEndToEndAdaptiveRun measures a complete adaptive scenario —
// grid + executor + controller — per iteration, the macro cost of the
// whole stack.
func BenchmarkEndToEndAdaptiveRun(b *testing.B) {
	app := workload.Image()
	for i := 0; i < b.N; i++ {
		g, err := grid.Homogeneous(6, 1, grid.LANLink)
		if err != nil {
			b.Fatal(err)
		}
		p, err := New(
			Stage("decode", nil, Weight(0.05), OutBytes(4e6)),
			Stage("filter", nil, Weight(0.2), OutBytes(4e6), Replicable()),
			Stage("sharpen", nil, Weight(0.1), OutBytes(4e6), Replicable()),
			Stage("encode", nil, Weight(0.08), OutBytes(0.8e6)),
		)
		if err != nil {
			b.Fatal(err)
		}
		_ = g
		sg, err := HomogeneousGrid(6)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := p.Simulate(sg, SimOptions{Items: 200, Policy: PolicyReactive, Seed: uint64(i), CV: app.CV})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Done != 200 {
			b.Fatal("incomplete run")
		}
	}
}
