package gridpipe

import (
	"strings"
	"testing"
)

// churnPipeline is a small simulation-only pipeline for churn tests.
func churnPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(
		Stage("parse", nil, Weight(0.05), OutBytes(1e4), Replicable()),
		Stage("work", nil, Weight(0.2), OutBytes(1e4), Replicable()),
		Stage("emit", nil, Weight(0.05), OutBytes(1e3), Replicable()),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWithChurnCrashRecovery: the facade end-to-end — a crash under a
// reactive policy is remapped around, the ledger balances, and the
// report carries the loss/retry/availability columns.
func TestWithChurnCrashRecovery(t *testing.T) {
	sg, err := HomogeneousGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sg.WithChurn(
		ChurnEvent{T: 10, Node: "node1", Kind: "crash"},
		ChurnEvent{T: 40, Node: "node1", Kind: "rejoin"},
	); err != nil {
		t.Fatal(err)
	}
	rep, err := churnPipeline(t).Simulate(sg, SimOptions{
		Duration: 60, Policy: PolicyReactive, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done == 0 {
		t.Fatal("no items completed")
	}
	if rep.MeanAvailability >= 1 || rep.MeanAvailability <= 0 {
		t.Fatalf("MeanAvailability = %v, want in (0,1) under churn", rep.MeanAvailability)
	}
	if rep.Lost != 0 {
		t.Fatalf("Lost = %d; a drain-safe remap should preserve items", rep.Lost)
	}
}

// TestWithChurnStaticBaseline: the same crash under a static policy
// completes fewer items (work parks behind the dead node) but the
// ledger still balances.
func TestWithChurnStaticBaseline(t *testing.T) {
	mkGrid := func(withChurn bool) *SimGrid {
		sg, err := HomogeneousGrid(4)
		if err != nil {
			t.Fatal(err)
		}
		if withChurn {
			if err := sg.WithChurn(
				ChurnEvent{T: 10, Node: "node1", Kind: "crash"},
				ChurnEvent{T: 40, Node: "node1", Kind: "rejoin"},
			); err != nil {
				t.Fatal(err)
			}
		}
		return sg
	}
	opts := SimOptions{Duration: 60, Policy: PolicyStatic, Seed: 3}
	calm, err := churnPipeline(t).Simulate(mkGrid(false), opts)
	if err != nil {
		t.Fatal(err)
	}
	churned, err := churnPipeline(t).Simulate(mkGrid(true), opts)
	if err != nil {
		t.Fatal(err)
	}
	if churned.Done >= calm.Done {
		t.Fatalf("crash did not hurt the static mapping: %d vs %d done", churned.Done, calm.Done)
	}
	if churned.Retries == 0 {
		t.Fatal("no retries recorded for the crashed node's work")
	}
}

// TestWithChurnJoinExcludedFromDeployment: a join-later node must not
// appear in the deployment-time mapping.
func TestWithChurnJoinExcludedFromDeployment(t *testing.T) {
	sg, err := HeterogeneousGrid(1, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	// node2 is 8× faster but hasn't joined yet: the initial mapping
	// must ignore it. The periodic policy searches every tick, so the
	// join is folded in at the first tick after t=30 (a reactive policy
	// would fold it in at its next triggered search).
	if err := sg.WithChurn(ChurnEvent{T: 30, Node: "node2", Kind: "join"}); err != nil {
		t.Fatal(err)
	}
	rep, err := churnPipeline(t).Simulate(sg, SimOptions{
		Duration: 60, Policy: PolicyPeriodic, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.InitialMapping, "2") {
		t.Fatalf("deployment mapping %s uses the not-yet-joined node", rep.InitialMapping)
	}
	if !strings.Contains(rep.FinalMapping, "2") {
		t.Fatalf("final mapping %s never folded the 8x joined node in", rep.FinalMapping)
	}
}

// TestWithChurnValidation: invalid schedules error cleanly through the
// facade.
func TestWithChurnValidation(t *testing.T) {
	sg, err := HomogeneousGrid(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]ChurnEvent{
		{{T: 5, Node: "node9", Kind: "crash"}},                                // unknown node
		{{T: 5, Node: "node1", Kind: "rejoin"}},                               // rejoin before crash
		{{T: 5, Node: "node1", Kind: "crash"}, {T: 6, Node: "node1", Kind: "crash"}}, // overlapping windows
		{{T: 5, Node: "node1", Kind: "explode"}},                              // unknown kind
		{{T: -1, Node: "node1", Kind: "crash"}},                               // negative time
	}
	for i, evs := range cases {
		if err := sg.WithChurn(evs...); err == nil {
			t.Fatalf("case %d: invalid schedule accepted", i)
		}
	}
}
