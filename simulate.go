package gridpipe

import (
	"fmt"
	"io"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/adaptive/simadapt"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
	"gridpipe/internal/workload"
)

// SimGrid is a modelled computational grid for Simulate.
type SimGrid struct {
	g *grid.Grid
}

// HomogeneousGrid builds a grid of n identical speed-1 nodes on a LAN.
func HomogeneousGrid(n int) (*SimGrid, error) {
	g, err := grid.Homogeneous(n, 1, grid.LANLink)
	if err != nil {
		return nil, err
	}
	return &SimGrid{g: g}, nil
}

// HeterogeneousGrid builds a LAN grid with one node per relative speed.
func HeterogeneousGrid(speeds ...float64) (*SimGrid, error) {
	g, err := grid.Heterogeneous(speeds, grid.LANLink)
	if err != nil {
		return nil, err
	}
	return &SimGrid{g: g}, nil
}

// GridFromJSON builds a grid from the JSON schema documented in
// internal/grid (nodes with speeds/cores/load traces, link overrides).
func GridFromJSON(r io.Reader) (*SimGrid, error) {
	cfg, err := grid.LoadConfig(r)
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	return &SimGrid{g: g}, nil
}

// NumNodes returns the node count.
func (s *SimGrid) NumNodes() int { return s.g.NumNodes() }

// Describe renders a human-readable summary.
func (s *SimGrid) Describe() string { return s.g.String() }

// ChurnEvent is one scheduled node-lifecycle transition for WithChurn.
// Kind is one of "crash", "rejoin", "join", "drain":
//
//   - crash takes an Up node Down abruptly — its in-flight work is
//     lost and re-dispatched from the last stage boundary;
//   - rejoin brings a crashed node back;
//   - join brings a declared-but-absent node into the grid for the
//     first time (it is excluded from the deployment mapping and folded
//     in by the adaptive controller once it joins);
//   - drain retires a node gracefully: it finishes accepted work but
//     takes no new items.
type ChurnEvent struct {
	T    float64
	Node string
	Kind string
}

// WithChurn attaches a node-lifecycle schedule to the grid's scenario.
// Events are validated as a per-node state machine (crash of an
// unknown or already-down node, rejoin before a crash, and so on all
// error); Simulate then replays the schedule in virtual time. Calling
// WithChurn again replaces the schedule.
func (s *SimGrid) WithChurn(events ...ChurnEvent) error {
	evs := make([]grid.ChurnEvent, len(events))
	for i, ev := range events {
		kind, err := grid.ParseChurnKind(ev.Kind)
		if err != nil {
			return err
		}
		evs[i] = grid.ChurnEvent{T: ev.T, Node: ev.Node, Kind: kind}
	}
	cs, err := grid.NewChurnSchedule(evs...)
	if err != nil {
		return err
	}
	return s.g.SetChurn(cs)
}

// Policy names accepted by SimOptions.
const (
	PolicyStatic     = "static"
	PolicyPeriodic   = "periodic"
	PolicyReactive   = "reactive"
	PolicyPredictive = "predictive"
	PolicyOracle     = "oracle"
)

func parsePolicy(name string) (adaptive.Policy, error) {
	switch name {
	case "", PolicyStatic:
		return adaptive.PolicyStatic, nil
	case PolicyPeriodic:
		return adaptive.PolicyPeriodic, nil
	case PolicyReactive:
		return adaptive.PolicyReactive, nil
	case PolicyPredictive:
		return adaptive.PolicyPredictive, nil
	case PolicyOracle:
		return adaptive.PolicyOracle, nil
	default:
		return 0, fmt.Errorf("gridpipe: unknown policy %q", name)
	}
}

// SimOptions tune a simulation run.
type SimOptions struct {
	// Items > 0 runs that many items to completion; otherwise Duration
	// seconds of virtual time with a saturated source.
	Items    int
	Duration float64
	// Policy is one of the Policy* constants (default static).
	Policy string
	// InBytes is the input message size entering stage 1.
	InBytes float64
	// CV is the coefficient of variation of per-item service demand
	// (0 = deterministic).
	CV float64
	// Interval is the controller period in virtual seconds (default 1).
	Interval float64
	// Seed drives all randomness.
	Seed uint64
	// KillRestart switches the remap protocol from the default
	// drain-safe.
	KillRestart bool
	// MaxRetries is the per-item crash-retry budget under churn: 0
	// means the default (8), negative means never drop items.
	MaxRetries int
}

// SimReport is the outcome of one simulated run.
type SimReport struct {
	// Done is the number of items completed.
	Done int
	// Makespan is the virtual completion time (fixed-item runs only).
	Makespan float64
	// Throughput is Done/elapsed in items per virtual second.
	Throughput float64
	// MeanLatency is the average per-item traversal time.
	MeanLatency float64
	// Remaps is how many reconfigurations the controller performed.
	Remaps int
	// FaultRemaps counts remaps forced by node crashes (subset of
	// Remaps).
	FaultRemaps int
	// Migrations is how many queued items remaps moved.
	Migrations int
	// Lost is the number of items dropped after exhausting their
	// crash-retry budget; Retries counts crash-induced re-dispatches.
	// Both are zero without churn.
	Lost    int
	Retries int
	// MeanAvailability is the node-averaged Up fraction of the grid
	// over the run under the churn schedule (1 without churn).
	MeanAvailability float64
	// InitialMapping and FinalMapping are tuple renderings of the
	// deployment-time and end-of-run mappings.
	InitialMapping, FinalMapping string
	// PredictedThroughput is the analytic model's estimate for the
	// initial mapping at zero load.
	PredictedThroughput float64
}

// Simulate runs the pipeline's cost model on a simulated grid. The
// initial mapping is searched at zero load (a deployment-time
// decision); the selected policy then adapts it as the grid's load
// traces unfold.
func (p *Pipeline) Simulate(sg *SimGrid, opts SimOptions) (SimReport, error) {
	if sg == nil {
		return SimReport{}, fmt.Errorf("gridpipe: nil grid")
	}
	if (opts.Items > 0) == (opts.Duration > 0) {
		return SimReport{}, fmt.Errorf("gridpipe: set exactly one of Items/Duration")
	}
	pol, err := parsePolicy(opts.Policy)
	if err != nil {
		return SimReport{}, err
	}
	spec := p.spec
	spec.InBytes = opts.InBytes

	// The deployment-time mapping may only use nodes that exist at t=0:
	// churn-scheduled late joiners are excluded and folded in by the
	// controller once they join.
	var avail []bool
	churn := sg.g.Churn()
	if churn != nil {
		avail = churn.InitialAvail(sg.g)
	}
	m0, _, err := sched.SearchAvailable(sched.LocalSearch{Seed: opts.Seed}, sg.g, spec, nil, avail)
	if err != nil {
		return SimReport{}, err
	}
	m0, pred, err := sched.ImproveWithReplicationAvail(sg.g, spec, m0, nil, 0, avail)
	if err != nil {
		return SimReport{}, err
	}

	app := workload.App{Name: "user", Spec: spec, CV: opts.CV}
	eng := &sim.Engine{}
	ex, err := exec.New(eng, sg.g, spec, m0, exec.Options{
		MaxInFlight: 4 * spec.NumStages(),
		WorkSampler: app.Sampler(opts.Seed),
		Seed:        opts.Seed,
		MaxRetries:  opts.MaxRetries,
	})
	if err != nil {
		return SimReport{}, err
	}
	if err := ex.InstallChurn(churn); err != nil {
		return SimReport{}, err
	}
	proto := exec.DrainSafe
	if opts.KillRestart {
		proto = exec.KillRestart
	}
	ctrl, err := simadapt.New(eng, sg.g, ex, spec, simadapt.Config{
		Policy:   pol,
		Interval: opts.Interval,
		Protocol: proto,
		Searcher: sched.LocalSearch{Seed: opts.Seed + 1},
	})
	if err != nil {
		return SimReport{}, err
	}
	ctrl.Start()

	rep := SimReport{
		InitialMapping:      m0.String(),
		PredictedThroughput: pred.Throughput,
	}
	var elapsed float64
	if opts.Items > 0 {
		ms, err := ex.RunItems(opts.Items)
		if err != nil {
			return SimReport{}, err
		}
		rep.Makespan = ms
		rep.Done = ex.Done()
		elapsed = ms
	} else {
		rep.Done = ex.RunUntil(opts.Duration)
		elapsed = opts.Duration
	}
	ctrl.Stop()
	if elapsed > 0 {
		rep.Throughput = float64(rep.Done) / elapsed
	}
	lats := ex.Latencies()
	if len(lats) > 0 {
		sum := 0.0
		for _, l := range lats {
			sum += l
		}
		rep.MeanLatency = sum / float64(len(lats))
	}
	st := ctrl.Stats()
	rep.Remaps = st.Remaps
	rep.FaultRemaps = st.FaultRemaps
	rep.Migrations = ex.Migrations()
	rep.Lost = ex.Lost()
	rep.Retries = ex.Retries()
	rep.MeanAvailability = 1
	if churn != nil && elapsed > 0 {
		rep.MeanAvailability = churn.MeanAvailability(sg.g, elapsed)
	}
	rep.FinalMapping = ex.Mapping().String()
	return rep, nil
}

// PredictMapping exposes the analytic model for a caller-supplied node
// load vector: it returns the best mapping's tuple string and its
// predicted throughput. It is the "what would the scheduler do" probe
// used by cmd/adaptpipe's -explain flag.
func (p *Pipeline) PredictMapping(sg *SimGrid, loads []float64, seed uint64) (string, float64, error) {
	m, _, err := (sched.LocalSearch{Seed: seed}).Search(sg.g, p.spec, loads)
	if err != nil {
		return "", 0, err
	}
	m, pred, err := sched.ImproveWithReplication(sg.g, p.spec, m, loads, 0)
	if err != nil {
		return "", 0, err
	}
	return m.String(), pred.Throughput, nil
}

// Spec returns a copy of the pipeline's modelled specification
// (stage names, weights, message sizes).
func (p *Pipeline) Spec() []StageInfo {
	out := make([]StageInfo, len(p.spec.Stages))
	for i, s := range p.spec.Stages {
		out[i] = StageInfo{
			Name: s.Name, Weight: s.Work, OutBytes: s.OutBytes, Replicable: s.Replicable,
		}
	}
	return out
}

// StageInfo is the public view of one modelled stage.
type StageInfo struct {
	Name       string
	Weight     float64
	OutBytes   float64
	Replicable bool
}
