// Genomics scenario: a parse → align → score pipeline where alignment
// dominates and varies wildly per sequence. The example runs the
// pipeline LIVE with real (toy) Smith-Waterman-style alignment, grows
// the align stage's worker pool mid-stream when it falls behind, and
// then uses the simulator to ask how many grid nodes the align stage
// would need.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"gridpipe"
	"gridpipe/internal/rng"
)

type record struct {
	id    int
	query string
	score int
}

func main() {
	// --- Live run with dynamic replication ------------------------------
	p, err := gridpipe.New(
		gridpipe.Stage("parse", parse, gridpipe.Weight(0.02)),
		gridpipe.Stage("align", align, gridpipe.Weight(0.35),
			gridpipe.Replicable(), gridpipe.Replicas(1), gridpipe.Buffer(4)),
		gridpipe.Stage("score", scoreStage, gridpipe.Weight(0.05)),
	)
	if err != nil {
		log.Fatal(err)
	}

	r := rng.New(7)
	const nSeqs = 200
	in := make(chan any)
	go func() {
		defer close(in)
		for i := 0; i < nSeqs; i++ {
			in <- fmt.Sprintf("seq%03d %s", i, randomDNA(r, 900+r.Intn(900)))
		}
	}()

	out, errs, err := p.Run(context.Background(), in)
	if err != nil {
		log.Fatal(err)
	}

	// Mid-stream adaptation: give the align stage more workers once the
	// first results confirm it is the bottleneck (its live mean service
	// dwarfs the others').
	go func() {
		time.Sleep(20 * time.Millisecond)
		st := p.LiveStats()
		if st[1].MeanService > 4*st[0].MeanService {
			if err := p.SetReplicas(1, 4); err == nil {
				fmt.Println("  [controller] align stage falling behind — grew to 4 workers")
			}
		}
	}()

	t0 := time.Now()
	count, best := 0, record{}
	for v := range out {
		rec := v.(record)
		count++
		if rec.score > best.score {
			best = rec
		}
	}
	if err := <-errs; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned %d sequences in %v; best hit seq%03d (score %d)\n",
		count, time.Since(t0).Round(time.Millisecond), best.id, best.score)
	for _, st := range p.LiveStats() {
		fmt.Printf("  stage %-6s count=%d replicas=%d mean=%v\n",
			st.Name, st.Count, st.Replicas, st.MeanService)
	}

	// --- Simulated sizing ------------------------------------------------
	sp, err := gridpipe.New(
		gridpipe.Stage("parse", nil, gridpipe.Weight(0.02), gridpipe.OutBytes(2e5)),
		gridpipe.Stage("align", nil, gridpipe.Weight(0.35), gridpipe.OutBytes(5e4), gridpipe.Replicable()),
		gridpipe.Stage("score", nil, gridpipe.Weight(0.05)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated sizing on idle LAN grids:")
	for _, nodes := range []int{3, 5, 8} {
		g, err := gridpipe.HomogeneousGrid(nodes)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sp.Simulate(g, gridpipe.SimOptions{Items: 1000, Seed: 3, CV: 0.8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d nodes: mapping %-22s -> %.2f seqs/s\n",
			nodes, rep.InitialMapping, rep.Throughput)
	}
}

const reference = "ACGTGCTAGCTAGGCTAACGGTACGATCGATCGGATCGTACGCTAGCATCGATCGGCTA" +
	"GGATCCGATTACAGCTGACGTACGTTAGCATCGCATGGCTAGCTAACGTTGCAGTCAGT"

func randomDNA(r *rng.Rand, n int) string {
	const bases = "ACGT"
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(bases[r.Intn(4)])
	}
	return b.String()
}

func parse(ctx context.Context, v any) (any, error) {
	parts := strings.SplitN(v.(string), " ", 2)
	var id int
	if _, err := fmt.Sscanf(parts[0], "seq%d", &id); err != nil {
		return nil, fmt.Errorf("bad record %q: %w", parts[0], err)
	}
	return record{id: id, query: parts[1]}, nil
}

// align runs a real local-alignment dynamic program against the
// reference — genuinely CPU-heavy and per-item variable, which is why
// the stage is the farming candidate.
func align(ctx context.Context, v any) (any, error) {
	rec := v.(record)
	q := rec.query
	m, n := len(q), len(reference)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	best := 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			s := -1
			if q[i-1] == reference[j-1] {
				s = 2
			}
			v := prev[j-1] + s
			if d := prev[j] - 1; d > v {
				v = d
			}
			if l := cur[j-1] - 1; l > v {
				v = l
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	rec.score = best
	return rec, nil
}

func scoreStage(ctx context.Context, v any) (any, error) {
	return v, nil // scores already attached; a real pipeline would bin them
}
