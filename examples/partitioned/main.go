// Partitioned simulation example: four tenants pinned to four grid
// sites run on the partitioned event engine (one calendar per site
// group, advanced in parallel under conservative windows bounded by
// the inter-site latency). The same workload runs twice — once on a
// single calendar, once partitioned with parallel workers — and the
// reports must match bit for bit: partitioning changes wall-clock
// time, never results.
package main

import (
	"fmt"
	"log"
	"reflect"

	"gridpipe/internal/cluster"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/workload"
)

func main() {
	g, err := grid.MultiSite([]grid.Site{
		{Name: "site-a", Nodes: 4, Speed: 1},
		{Name: "site-b", Nodes: 4, Speed: 1.5},
		{Name: "site-c", Nodes: 4, Speed: 2},
		{Name: "site-d", Nodes: 4, Speed: 1},
	}, grid.LANLink, grid.WANLink)
	if err != nil {
		log.Fatal(err)
	}

	// The partition seams an operator would inspect with gridsim -parts:
	// contiguous blocks, lookahead = the minimum cross-block latency.
	plan, err := exec.PlanPartitions(g, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.String())

	// One tenant per site, each with its own app, arrival, and budget.
	lease := func(site int) []grid.NodeID {
		ns := make([]grid.NodeID, 4)
		for i := range ns {
			ns[i] = grid.NodeID(site*4 + i)
		}
		return ns
	}
	job := func(name string, app workload.App, arrival float64, items int) model.JobSpec {
		return model.JobSpec{Name: name, Spec: app.Spec, Arrival: arrival, Items: items, CV: app.CV}
	}
	jobs := []cluster.PinnedJob{
		{Spec: job("genome", workload.Genome(), 0, 400), Nodes: lease(0)},
		{Spec: job("image", workload.Image(), 0.5, 300), Nodes: lease(1)},
		{Spec: job("video", workload.Video(), 1.0, 300), Nodes: lease(2)},
		{Spec: job("genome2", workload.Genome(), 0.2, 350), Nodes: lease(3)},
	}

	golden, err := cluster.RunPartitioned(g, jobs, cluster.PartitionedOptions{Parts: 1, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	parallel, err := cluster.RunPartitioned(g, jobs, cluster.PartitionedOptions{Parts: 4, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s %8s %10s %12s %12s\n", "job", "done", "makespan", "throughput", "latency")
	for _, jr := range parallel.Jobs {
		fmt.Printf("%-8s %8d %9.1fs %10.1f/s %11.3fs\n",
			jr.Name, jr.Done, jr.Makespan, jr.Throughput, jr.MeanLatency)
	}
	fmt.Printf("\ncluster makespan %.1fs, Jain fairness %.3f\n", parallel.Makespan, parallel.Jain)

	if !reflect.DeepEqual(golden, parallel) {
		log.Fatal("partitioned report diverged from the single-calendar run")
	}
	fmt.Println("single-calendar and 4-partition runs match bit for bit")
}
