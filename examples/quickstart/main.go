// Quickstart: define a three-stage pipeline once, run it live on
// goroutines, then simulate the same pipeline on a heterogeneous grid
// to see where a scheduler would place the stages.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"gridpipe"
)

func main() {
	// A toy text pipeline: tokenize → stem (heavy, stateless) → count.
	p, err := gridpipe.New(
		gridpipe.Stage("tokenize", tokenize, gridpipe.Weight(0.02), gridpipe.OutBytes(2e4)),
		gridpipe.Stage("stem", stem, gridpipe.Weight(0.1), gridpipe.OutBytes(2e4),
			gridpipe.Replicable(), gridpipe.Replicas(4)),
		gridpipe.Stage("count", count, gridpipe.Weight(0.03)),
	)
	if err != nil {
		log.Fatal(err)
	}

	// --- Live run ------------------------------------------------------
	docs := []any{
		"the quick brown fox jumps over the lazy dog",
		"pipelines structure streaming computations cleanly",
		"adaptive skeletons remap stages when resources change",
		"grids are heterogeneous and dynamically loaded",
	}
	out, err := p.Process(context.Background(), docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("live results (in input order):")
	for i, v := range out {
		fmt.Printf("  doc %d: %v distinct stems\n", i, v)
	}
	for _, st := range p.LiveStats() {
		fmt.Printf("  stage %-8s processed %2d items, mean service %v\n",
			st.Name, st.Count, st.MeanService)
	}

	// --- Simulated placement on a grid ----------------------------------
	// Same pipeline definition, now asked: "on a grid with a 4x node,
	// where should the stages go, and what throughput should I expect?"
	sp, err := gridpipe.New(
		gridpipe.Stage("tokenize", nil, gridpipe.Weight(0.02), gridpipe.OutBytes(2e4)),
		gridpipe.Stage("stem", nil, gridpipe.Weight(0.1), gridpipe.OutBytes(2e4), gridpipe.Replicable()),
		gridpipe.Stage("count", nil, gridpipe.Weight(0.03)),
	)
	if err != nil {
		log.Fatal(err)
	}
	g, err := gridpipe.HeterogeneousGrid(1, 1, 4)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sp.Simulate(g, gridpipe.SimOptions{Items: 2000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated on grid with speeds (1,1,4):\n")
	fmt.Printf("  mapping %s  (stage tuple; {a,b} = replicated)\n", rep.InitialMapping)
	fmt.Printf("  predicted %.1f items/s, measured %.1f items/s\n",
		rep.PredictedThroughput, rep.Throughput)
	fmt.Printf("  mean per-item latency %.3fs over %d items\n", rep.MeanLatency, rep.Done)
}

func tokenize(ctx context.Context, v any) (any, error) {
	return strings.Fields(v.(string)), nil
}

// stem applies a crude suffix-stripping stemmer; it is stateless, so
// the stage is replicable.
func stem(ctx context.Context, v any) (any, error) {
	words := v.([]string)
	out := make([]string, len(words))
	for i, w := range words {
		w = strings.ToLower(w)
		for _, suf := range []string{"ing", "ly", "ed", "es", "s"} {
			if len(w) > len(suf)+2 && strings.HasSuffix(w, suf) {
				w = w[:len(w)-len(suf)]
				break
			}
		}
		out[i] = w
	}
	return out, nil
}

func count(ctx context.Context, v any) (any, error) {
	distinct := map[string]bool{}
	for _, w := range v.([]string) {
		distinct[w] = true
	}
	return len(distinct), nil
}
