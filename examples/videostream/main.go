// Video-transcoding scenario on a multi-site grid: the 5-stage video
// workload is mapped across two clusters joined by a WAN link. The
// example shows why the mapping model keeps chatty stage pairs inside
// one site (the 8 MB decoded frames must not cross the WAN), and what
// happens when the faster remote cluster becomes diurnally loaded.
package main

import (
	"fmt"
	"log"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/adaptive/simadapt"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
	"gridpipe/internal/stats"
	"gridpipe/internal/trace"
	"gridpipe/internal/workload"
)

func main() {
	app := workload.Video()
	fmt.Printf("workload: %s, stages:\n", app.Name)
	for _, st := range app.Spec.Stages {
		fmt.Printf("  %-10s %.2f ref-s/frame, emits %.1f MB\n", st.Name, st.Work, st.OutBytes/1e6)
	}

	mk := func(loaded bool) (*grid.Grid, error) {
		var remoteLoad trace.Trace
		if loaded {
			// Diurnal load on the remote (fast) site.
			remoteLoad = trace.Sine{Base: 0.45, Amp: 0.45, Period: 240}
		}
		return grid.MultiSite([]grid.Site{
			{Name: "local", Nodes: 3, Speed: 1},
			{Name: "remote", Nodes: 3, Speed: 2, Load: remoteLoad},
		}, grid.LANLink, grid.WANLink)
	}

	// 1. Idle grid: where does the model place the stages?
	g, err := mk(false)
	if err != nil {
		log.Fatal(err)
	}
	m0, pred, err := (sched.LocalSearch{Seed: 1}).Search(g, app.Spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nidle-grid mapping %s — predicted %.2f frames/s\n", m0, pred.Throughput)
	fmt.Println("(nodes 0-2 = local site, 3-5 = remote; heavy decode->transform->encode traffic stays within one site)")

	// Show the cost of ignoring the WAN: force decode and transform
	// onto different sites.
	naive := model.FromNodes(0, 0, 3, 3, 3)
	npred, err := model.Predict(g, app.Spec, naive, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WAN-crossing mapping %s would manage only %.3f frames/s (link-bound)\n",
		naive, npred.Throughput)

	// 2. Diurnally loaded remote site: static vs adaptive over a full
	// period.
	const horizon = 480.0
	tb := stats.NewTable("diurnal load on the remote site",
		"policy", "frames done", "remaps", "final mapping")
	for _, pol := range []adaptive.Policy{adaptive.PolicyStatic, adaptive.PolicyPredictive} {
		gl, err := mk(true)
		if err != nil {
			log.Fatal(err)
		}
		eng := &sim.Engine{}
		ex, err := exec.New(eng, gl, app.Spec, m0, exec.Options{
			MaxInFlight: 20, WorkSampler: app.Sampler(1),
		})
		if err != nil {
			log.Fatal(err)
		}
		ctrl, err := simadapt.New(eng, gl, ex, app.Spec, simadapt.Config{
			Policy: pol, Interval: 2,
			Searcher: sched.LocalSearch{Seed: 2},
		})
		if err != nil {
			log.Fatal(err)
		}
		ctrl.Start()
		done := ex.RunUntil(horizon)
		ctrl.Stop()
		tb.AddRowf(pol.String(), done, ctrl.Stats().Remaps, ex.Mapping().String())
	}
	fmt.Println()
	fmt.Println(tb.String())
}
