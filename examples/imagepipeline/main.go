// Image-processing scenario: the bundled 4-stage image workload runs
// on a 6-node grid where one node is hit by a competing job mid-run.
// The example contrasts the static mapping with the reactive adaptive
// policy — the headline F1 experiment, told as an application story.
package main

import (
	"fmt"
	"log"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/adaptive/simadapt"
	"gridpipe/internal/exec"
	"gridpipe/internal/grid"
	"gridpipe/internal/sched"
	"gridpipe/internal/sim"
	"gridpipe/internal/stats"
	"gridpipe/internal/trace"
	"gridpipe/internal/workload"
)

func main() {
	app := workload.Image()
	fmt.Printf("workload: %s (%d stages, %.2f ref-s per frame)\n",
		app.Name, app.Spec.NumStages(), app.Spec.TotalWork())

	const (
		horizon = 240.0
		spikeAt = 80.0
	)

	// Deployment-time mapping, found on an idle view of the grid.
	idle, err := mkGrid(-1, spikeAt)
	if err != nil {
		log.Fatal(err)
	}
	m0, _, err := (sched.LocalSearch{Seed: 1}).Search(idle, app.Spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	m0, pred, err := sched.ImproveWithReplication(idle, app.Spec, m0, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	victim := int(m0.Assign[1][0]) // node hosting the heavy filter stage
	fmt.Printf("deployment mapping %s, predicted %.2f frames/s\n", m0, pred.Throughput)
	fmt.Printf("a competing job lands on node%d at t=%.0fs (85%% load)\n\n", victim, spikeAt)

	tb := stats.NewTable("static vs adaptive over a load spike",
		"policy", "frames done", "thr before spike", "thr after spike", "remaps")
	for _, pol := range []adaptive.Policy{adaptive.PolicyStatic, adaptive.PolicyReactive} {
		g, err := mkGrid(victim, spikeAt)
		if err != nil {
			log.Fatal(err)
		}
		eng := &sim.Engine{}
		ex, err := exec.New(eng, g, app.Spec, m0, exec.Options{
			MaxInFlight: 16, WorkSampler: app.Sampler(1),
		})
		if err != nil {
			log.Fatal(err)
		}
		ctrl, err := simadapt.New(eng, g, ex, app.Spec, simadapt.Config{
			Policy: pol, Interval: 1,
			Searcher: sched.LocalSearch{Seed: 2},
		})
		if err != nil {
			log.Fatal(err)
		}
		ctrl.Start()
		done := ex.RunUntil(horizon)
		ctrl.Stop()

		completions := ex.Monitor().Completions()
		tb.AddRowf(pol.String(), done,
			rate(completions, 0, spikeAt),
			rate(completions, spikeAt+20, horizon),
			ctrl.Stats().Remaps)

		if pol == adaptive.PolicyReactive {
			for _, ev := range ctrl.Stats().Events {
				fmt.Printf("  t=%6.1fs remap %s -> %s (predicted %.2f -> %.2f frames/s, %d frames migrated)\n",
					ev.Time, ev.From, ev.To, ev.PredictedOld, ev.PredictedNew, ev.Stats.Moved)
			}
		}
	}
	fmt.Println()
	fmt.Println(tb.String())
}

func mkGrid(victim int, spikeAt float64) (*grid.Grid, error) {
	nodes := make([]*grid.Node, 6)
	for i := range nodes {
		nodes[i] = &grid.Node{Name: fmt.Sprintf("node%d", i), Speed: 1, Cores: 1}
		if i == victim {
			nodes[i].Load = trace.NewSteps(0, trace.StepChange{T: spikeAt, Load: 0.85})
		}
	}
	return grid.NewGrid(grid.LANLink, nodes...)
}

func rate(times []float64, t0, t1 float64) float64 {
	n := 0
	for _, t := range times {
		if t >= t0 && t < t1 {
			n++
		}
	}
	return float64(n) / (t1 - t0)
}
