package gridpipe

import (
	"context"
	"testing"
	"time"
)

// sleeper returns a stage function sleeping d per item.
func sleeper(d time.Duration) StageFunc {
	return func(ctx context.Context, v any) (any, error) {
		time.Sleep(d)
		return v, nil
	}
}

func TestWithLiveAdaptiveValidates(t *testing.T) {
	mk := func() *Pipeline {
		p, err := New(
			Stage("a", sleeper(time.Microsecond), Weight(0.01)),
			Stage("b", sleeper(time.Microsecond), Weight(0.1), Replicable()),
		)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := mk().WithLiveAdaptive("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if err := mk().WithLiveAdaptive(PolicyOracle); err == nil {
		t.Fatal("oracle accepted for live adaptation")
	}
	p := mk()
	if _, err := p.Process(context.Background(), []any{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.WithLiveAdaptive(PolicyReactive); err == nil {
		t.Fatal("WithLiveAdaptive accepted after Run")
	}
}

// TestWithLiveAdaptiveGrowsBottleneck drives the facade end to end:
// ordered results, and the heavy replicable stage grown by the live
// controller while streaming.
func TestWithLiveAdaptiveGrowsBottleneck(t *testing.T) {
	p, err := New(
		Stage("light", sleeper(300*time.Microsecond), Weight(0.01), Buffer(8)),
		Stage("heavy", sleeper(6*time.Millisecond), Weight(0.01), Replicable(), Buffer(8)),
		Stage("tail", sleeper(300*time.Microsecond), Weight(0.01), Buffer(8)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WithLiveAdaptive(PolicyPeriodic, LiveAdaptiveOptions{
		Interval:   30 * time.Millisecond,
		MaxWorkers: 10,
	}); err != nil {
		t.Fatal(err)
	}
	inputs := make([]any, 300)
	for i := range inputs {
		inputs[i] = i
	}
	out, err := p.Process(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v.(int) != i {
			t.Fatalf("out of order: got %v at %d", v, i)
		}
	}
	rep := p.LiveAdaptiveReport()
	if rep.Ticks == 0 {
		t.Fatalf("controller never ticked: %+v", rep)
	}
	if rep.Resizes == 0 {
		t.Fatalf("controller never resized: %+v", rep)
	}
	// All headroom should have gone to the heavy stage (the only
	// replicable one).
	if rep.Replicas[1] < 4 {
		t.Fatalf("heavy stage workers = %d, want ≥4 (%+v)", rep.Replicas[1], rep)
	}
	if rep.Replicas[0] != 1 || rep.Replicas[2] != 1 {
		t.Fatalf("non-replicable stages resized: %+v", rep.Replicas)
	}
	if len(rep.Events) == 0 || rep.Events[0].To == "" {
		t.Fatalf("events not rendered: %+v", rep.Events)
	}
}

// TestWithLiveAdaptiveStaticIsInert: the static policy must neither
// tick nor resize — the F11 baseline.
func TestWithLiveAdaptiveStaticIsInert(t *testing.T) {
	p, err := New(
		Stage("a", sleeper(100*time.Microsecond), Weight(0.01), Replicable(), Buffer(4)),
		Stage("b", sleeper(time.Millisecond), Weight(0.1), Replicable(), Buffer(4)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WithLiveAdaptive(PolicyStatic, LiveAdaptiveOptions{Interval: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	inputs := make([]any, 50)
	for i := range inputs {
		inputs[i] = i
	}
	if _, err := p.Process(context.Background(), inputs); err != nil {
		t.Fatal(err)
	}
	rep := p.LiveAdaptiveReport()
	if rep.Ticks != 0 || rep.Resizes != 0 {
		t.Fatalf("static controller acted: %+v", rep)
	}
	if rep.Replicas[0] != 1 || rep.Replicas[1] != 1 {
		t.Fatalf("static run resized: %+v", rep.Replicas)
	}
}
