package gridpipe

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func simPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := New(
		Stage("parse", nil, Weight(0.02), Replicable()),
		Stage("align", nil, Weight(0.3), Replicable()),
		Stage("score", nil, Weight(0.05), Replicable()),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClusterSimulatedRun(t *testing.T) {
	g, err := HomogeneousGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{Grid: g, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(simPipeline(t), JobOpts{Name: "a", Items: 200, CV: 0.3}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(simPipeline(t), JobOpts{Name: "b", Items: 150, CV: 0.3, Arrival: 3}); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 2 || rep.Jobs[0].Done != 200 || rep.Jobs[1].Done != 150 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Makespan <= 0 || rep.Arbitrations < 2 {
		t.Fatalf("makespan=%v arbitrations=%d", rep.Makespan, rep.Arbitrations)
	}
	for _, jr := range rep.Jobs {
		if jr.State != "done" {
			t.Fatalf("job %s state=%s", jr.Name, jr.State)
		}
	}
}

func TestClusterAdmissionErrors(t *testing.T) {
	g, err := HomogeneousGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Submit(simPipeline(t), JobOpts{Items: 10, FloorNodes: 9})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("floor over the grid must fail cleanly at Submit, got %v", err)
	}
	if _, err := cl.Submit(simPipeline(t), JobOpts{Items: 0}); err == nil {
		t.Fatal("a job without items must be rejected")
	}
	if _, err := NewCluster(ClusterConfig{Grid: g, Admission: "bogus"}); err == nil {
		t.Fatal("unknown admission mode must be rejected")
	}
	noGrid, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noGrid.Submit(simPipeline(t), JobOpts{Items: 1}); err == nil {
		t.Fatal("Submit without a grid must error")
	}
	if _, err := noGrid.Run(); err == nil {
		t.Fatal("Run without a grid must error")
	}
}

func livePipeline(t *testing.T) *Pipeline {
	t.Helper()
	work := func(ctx context.Context, v any) (any, error) {
		time.Sleep(200 * time.Microsecond)
		return v, nil
	}
	p, err := New(
		Stage("a", work, Weight(0.1), Replicable(), Replicas(1)),
		Stage("b", work, Weight(0.3), Replicable(), Replicas(1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestClusterLiveConcurrentProcess runs two live tenants on one
// cluster budget concurrently: both must complete in order, through
// their own adaptive controllers capped by the shared budget.
func TestClusterLiveConcurrentProcess(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		Policy:     PolicyReactive,
		MaxWorkers: 8,
		Interval:   0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]any, 60)
	for i := range inputs {
		inputs[i] = i
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	outs := make([][]any, 2)
	for k := 0; k < 2; k++ {
		p := livePipeline(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[k], errs[k] = cl.Process(context.Background(), p, inputs, JobOpts{
				Name: fmt.Sprintf("tenant%d", k), Weight: 1,
			})
		}()
	}
	wg.Wait()
	for k := 0; k < 2; k++ {
		if errs[k] != nil {
			t.Fatalf("tenant %d: %v", k, errs[k])
		}
		if len(outs[k]) != len(inputs) {
			t.Fatalf("tenant %d: %d outputs for %d inputs", k, len(outs[k]), len(inputs))
		}
		for i, v := range outs[k] {
			if v != i {
				t.Fatalf("tenant %d: out[%d]=%v (order broken)", k, i, v)
			}
		}
	}
}

// TestPipelineConcurrentUseGuard pins the facade fix: two concurrent
// Process calls on one *Pipeline must not corrupt the single-use live
// state — exactly one wins, the other gets a clear error.
func TestPipelineConcurrentUseGuard(t *testing.T) {
	p := livePipeline(t)
	inputs := make([]any, 20)
	for i := range inputs {
		inputs[i] = i
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[k] = p.Process(context.Background(), inputs)
		}()
	}
	wg.Wait()
	okCount, errCount := 0, 0
	for _, err := range errs {
		if err == nil {
			okCount++
		} else if strings.Contains(err.Error(), "single-use") {
			errCount++
		} else {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if okCount != 1 || errCount != 3 {
		t.Fatalf("want exactly 1 success and 3 single-use errors, got %d/%d", okCount, errCount)
	}
}
