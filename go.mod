module gridpipe

go 1.24
