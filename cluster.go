package gridpipe

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"gridpipe/internal/adaptive"
	"gridpipe/internal/adaptive/liveadapt"
	"gridpipe/internal/cluster"
	"gridpipe/internal/conc"
	"gridpipe/internal/grid"
	"gridpipe/internal/model"
	"gridpipe/internal/workload"
)

// Admission-control modes accepted by ClusterConfig.
const (
	// AdmissionQueue holds arriving jobs FIFO until capacity frees
	// (the default).
	AdmissionQueue = "queue"
	// AdmissionReject refuses jobs the residual capacity cannot place.
	AdmissionReject = "reject"
	// AdmissionOverAdmit admits everything immediately — the collapse
	// baseline of experiment F13.
	AdmissionOverAdmit = "over-admit"
)

// ClusterConfig tunes NewCluster.
type ClusterConfig struct {
	// Grid is the simulated substrate shared by every submitted job
	// (required for Submit/Run; Process runs live and needs none).
	Grid *SimGrid
	// Policy drives cross-job arbitration, one of the Policy*
	// constants (default static: the cluster re-divides nodes only on
	// job arrivals and finishes).
	Policy string
	// Interval is the arbitration period in virtual seconds
	// (simulated) or wall seconds (live; default 1 / 250 ms).
	Interval float64
	// Admission selects the admission-control mode (default queue).
	Admission string
	// Seed drives every job's derived randomness.
	Seed uint64
	// MaxWorkers is the live runtime's total goroutine budget shared
	// by concurrent Process calls (default 2×GOMAXPROCS).
	MaxWorkers int
	// HysteresisGain and Cooldown tune the arbitration controller
	// (adaptive.Config semantics).
	HysteresisGain float64
	Cooldown       float64
}

// Cluster runs many jobs over one shared substrate: simulated jobs
// lease grid capacity under weighted max-min arbitration (Submit +
// Run), and concurrent live Process calls split one real worker
// budget the same way.
type Cluster struct {
	cfg    ClusterConfig
	inner  *cluster.Cluster
	policy adaptive.Policy
	budget *conc.WorkerBudget
}

// NewCluster builds a cluster. With a Grid, Submit queues simulated
// jobs and Run executes them in one virtual-time engine; with or
// without one, concurrent Process calls share the live worker budget.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	pol, err := parsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	var adm cluster.Admission
	switch cfg.Admission {
	case "", AdmissionQueue:
		adm = cluster.AdmitQueue
	case AdmissionReject:
		adm = cluster.AdmitReject
	case AdmissionOverAdmit:
		adm = cluster.AdmitAll
	default:
		return nil, fmt.Errorf("gridpipe: unknown admission mode %q", cfg.Admission)
	}
	maxW := cfg.MaxWorkers
	if maxW <= 0 {
		maxW = 2 * runtime.GOMAXPROCS(0)
	}
	c := &Cluster{cfg: cfg, policy: pol, budget: conc.NewWorkerBudget(maxW)}
	if cfg.Grid != nil {
		inner, err := cluster.New(cfg.Grid.g, cluster.Config{
			Policy:         pol,
			Interval:       cfg.Interval,
			HysteresisGain: cfg.HysteresisGain,
			Cooldown:       cfg.Cooldown,
			Admission:      adm,
			Seed:           cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		c.inner = inner
	}
	return c, nil
}

// JobOpts describes one submitted job.
type JobOpts struct {
	// Name labels the job in reports (default jobN).
	Name string
	// Weight is the fairness weight (default 1).
	Weight float64
	// FloorNodes is the admission floor: the minimum nodes the job
	// needs to run at all (default 1).
	FloorNodes int
	// Arrival is the job's virtual arrival time (simulated jobs).
	Arrival float64
	// Items is how many items the job processes (simulated jobs;
	// required).
	Items int
	// CV is the per-item service-demand variability.
	CV float64
	// InBytes is the input message size entering the first stage.
	InBytes float64
	// PinNodes, when non-empty, leases the job statically to these
	// nodes — the static-partition baseline arbitration is measured
	// against.
	PinNodes []int
}

// ClusterJob is a handle to one submitted job.
type ClusterJob struct {
	inner *cluster.Job
}

// Name returns the job's label.
func (j *ClusterJob) Name() string { return j.inner.Name() }

// State renders the job's admission-lifecycle state.
func (j *ClusterJob) State() string { return j.inner.State().String() }

// Submit registers a simulated job running the pipeline's cost model
// over the shared grid. Admission control applies at the job's
// arrival: a floor no residual capacity can meet queues or rejects
// the job per the cluster's admission mode, and a floor exceeding the
// whole grid errors here.
func (c *Cluster) Submit(p *Pipeline, opts JobOpts) (*ClusterJob, error) {
	if c.inner == nil {
		return nil, fmt.Errorf("gridpipe: Submit on a cluster built without a Grid")
	}
	spec := p.spec
	spec.InBytes = opts.InBytes
	js := model.JobSpec{
		Name:       opts.Name,
		Spec:       spec,
		Weight:     opts.Weight,
		FloorNodes: opts.FloorNodes,
		Arrival:    opts.Arrival,
		Items:      opts.Items,
		CV:         opts.CV,
	}
	var (
		j   *cluster.Job
		err error
	)
	if len(opts.PinNodes) > 0 {
		nodes := make([]grid.NodeID, len(opts.PinNodes))
		for i, n := range opts.PinNodes {
			nodes[i] = grid.NodeID(n)
		}
		j, err = c.inner.SubmitPinned(js, nodes)
	} else {
		j, err = c.inner.Submit(js)
	}
	if err != nil {
		return nil, err
	}
	return &ClusterJob{inner: j}, nil
}

// SubmitTrace replays a recorded JSON-lines traffic trace (see
// DESIGN.md, "Traffic engine") into the simulated cluster: one job per
// trace event, submitted in trace order at its recorded virtual
// arrival time, running the named bundled workload. Per-job randomness
// derives from submit order, so replaying a trace into a cluster with
// the same configuration reproduces the generating run's report
// exactly.
func (c *Cluster) SubmitTrace(r io.Reader) ([]*ClusterJob, error) {
	if c.inner == nil {
		return nil, fmt.Errorf("gridpipe: SubmitTrace on a cluster built without a Grid")
	}
	tr, err := workload.ReadTrace(r)
	if err != nil {
		return nil, err
	}
	jobs, err := c.inner.SubmitTrace(tr)
	if err != nil {
		return nil, err
	}
	out := make([]*ClusterJob, len(jobs))
	for i, j := range jobs {
		out[i] = &ClusterJob{inner: j}
	}
	return out, nil
}

// ReplayOptions tunes a wall-clock trace replay (ProcessTrace).
type ReplayOptions struct {
	// Speedup divides the recorded inter-arrival gaps: 10 replays a
	// 100-second trace in ~10 wall seconds (default 1 = real time).
	Speedup float64
	// Build constructs the live pipeline and its inputs for one trace
	// event (required — a live pipeline is single-use, so every event
	// needs a fresh one). It receives the event's app name and item
	// count.
	Build func(app string, items int) (*Pipeline, []any, error)
}

// TraceJobResult is one replayed trace event's outcome.
type TraceJobResult struct {
	// Index is the event's position in the trace; App its workload
	// name.
	Index int
	App   string
	// Outputs and Err are the event's Process results.
	Outputs []any
	Err     error
}

// ProcessTrace replays a recorded traffic trace against the live
// runtime: each event waits out its recorded inter-arrival gap in wall
// time (scaled by opts.Speedup), then runs a fresh pipeline from
// opts.Build as one tenant of the cluster's shared worker budget —
// open-loop, so a slow tenant does not delay later arrivals. It
// returns one result per event, in trace order, once all have
// finished; a cancelled context stops launching new events and is
// reported as the error.
func (c *Cluster) ProcessTrace(ctx context.Context, r io.Reader, opts ReplayOptions) ([]TraceJobResult, error) {
	if opts.Build == nil {
		return nil, fmt.Errorf("gridpipe: ProcessTrace needs a Build callback")
	}
	speedup := opts.Speedup
	if speedup <= 0 {
		speedup = 1
	}
	tr, err := workload.ReadTrace(r)
	if err != nil {
		return nil, err
	}
	results := make([]TraceJobResult, len(tr))
	var wg sync.WaitGroup
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	launchErr := error(nil)
	prev := 0.0
	for i, ev := range tr {
		gap := time.Duration((ev.T - prev) / speedup * float64(time.Second))
		prev = ev.T
		if gap > 0 {
			timer.Reset(gap)
			select {
			case <-timer.C:
			case <-ctx.Done():
				launchErr = ctx.Err()
			}
		}
		if launchErr != nil {
			// Stop launching; mark the unlaunched tail.
			for j := i; j < len(tr); j++ {
				results[j] = TraceJobResult{Index: j, App: tr[j].App, Err: launchErr}
			}
			break
		}
		p, inputs, err := opts.Build(ev.App, ev.Items)
		if err != nil {
			results[i] = TraceJobResult{Index: i, App: ev.App, Err: err}
			continue
		}
		wg.Add(1)
		go func(i int, ev workload.TraceEvent, p *Pipeline, inputs []any) {
			defer wg.Done()
			out, err := c.Process(ctx, p, inputs, JobOpts{
				Name:   fmt.Sprintf("%s-%d", ev.App, i),
				Weight: ev.Weight,
			})
			results[i] = TraceJobResult{Index: i, App: ev.App, Outputs: out, Err: err}
		}(i, ev, p, inputs)
	}
	wg.Wait()
	return results, launchErr
}

// ClusterJobReport is one job's outcome in a ClusterReport.
type ClusterJobReport struct {
	Name  string
	State string
	// Arrival/Admitted/Finished are virtual times; Waited is the
	// admission-queue delay.
	Arrival, Admitted, Finished, Waited float64
	Done, Lost                          int
	Makespan, Throughput, MeanLatency   float64
	Remaps                              int
	InitialMapping, FinalMapping        string
}

// ClusterReport is the outcome of one simulated cluster run.
type ClusterReport struct {
	Jobs []ClusterJobReport
	// Makespan is the virtual time the last job finished at.
	Makespan float64
	// Arbitrations counts arbiter rounds; Remaps counts adaptive
	// cross-job reconfigurations.
	Arbitrations, Remaps int
	// MinWeightedShare and Jain summarise fairness over per-job
	// weighted throughputs (Jain 1 = perfectly fair).
	MinWeightedShare, Jain float64
}

// Run executes every submitted job to completion in one virtual-time
// engine and reports per-job and fairness outcomes. It may be called
// once.
func (c *Cluster) Run() (ClusterReport, error) {
	if c.inner == nil {
		return ClusterReport{}, fmt.Errorf("gridpipe: Run on a cluster built without a Grid")
	}
	rep, err := c.inner.Run()
	if err != nil {
		return ClusterReport{}, err
	}
	out := ClusterReport{
		Makespan:         rep.Makespan,
		Arbitrations:     rep.Arbitrations,
		Remaps:           rep.Remaps,
		MinWeightedShare: rep.MinWeightedShare,
		Jain:             rep.Jain,
	}
	for _, jr := range rep.Jobs {
		out.Jobs = append(out.Jobs, ClusterJobReport{
			Name:           jr.Name,
			State:          jr.State.String(),
			Arrival:        jr.Arrival,
			Admitted:       jr.Admitted,
			Finished:       jr.Finished,
			Waited:         jr.Waited,
			Done:           jr.Done,
			Lost:           jr.Lost,
			Makespan:       jr.Makespan,
			Throughput:     jr.Throughput,
			MeanLatency:    jr.MeanLatency,
			Remaps:         jr.Remaps,
			InitialMapping: jr.InitialMapping,
			FinalMapping:   jr.FinalMapping,
		})
	}
	return out, nil
}

// Process runs the pipeline live over the inputs as one tenant of the
// cluster's shared worker budget: concurrent Process calls on one
// Cluster split the real goroutine budget by weight, each under its
// own adaptive controller (the cluster's policy), re-divided as
// tenants join and leave. Each call needs its own *Pipeline (a live
// pipeline is single-use).
func (c *Cluster) Process(ctx context.Context, p *Pipeline, inputs []any, opts JobOpts) ([]any, error) {
	lease := c.budget.Lease(opts.Weight)
	defer lease.Release()
	if c.policy == adaptive.PolicyStatic {
		// No adaptation: the tenant runs with its declared replicas and
		// only holds a lease so concurrent adaptive tenants shrink
		// around it.
		return p.Process(ctx, inputs)
	}
	interval := time.Duration(c.cfg.Interval * float64(time.Second))
	if err := p.withLiveBudget(liveadapt.Config{
		Policy:         c.policy,
		Interval:       interval,
		HysteresisGain: c.cfg.HysteresisGain,
		MaxWorkers:     c.budget.Total(),
		BudgetCap:      lease.Cap,
	}); err != nil {
		return nil, err
	}
	return p.Process(ctx, inputs)
}
