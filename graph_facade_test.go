package gridpipe

import (
	"context"
	"strings"
	"testing"
)

func ident(_ context.Context, v any) (any, error) { return v, nil }

func diamondDefs() []StageDef {
	return []StageDef{
		Stage("head", func(_ context.Context, v any) (any, error) { return v.(int) + 1, nil },
			Weight(0.05), OutBytes(1e5)),
		Split(
			Branch(Stage("double", func(_ context.Context, v any) (any, error) { return v.(int) * 2, nil },
				Weight(0.2), OutBytes(1e5), Replicable(), Replicas(2))),
			Branch(Stage("negate", func(_ context.Context, v any) (any, error) { return -v.(int), nil },
				Weight(0.2), OutBytes(1e5), Replicable())),
		),
		Merge("sum", func(_ context.Context, v any) (any, error) {
			parts := v.([]any)
			return parts[0].(int) + parts[1].(int), nil
		}, Weight(0.05)),
	}
}

func TestSplitMergeLive(t *testing.T) {
	p, err := New(diamondDefs()...)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStages() != 4 {
		t.Fatalf("NumStages = %d, want 4 (flattened)", p.NumStages())
	}
	if p.Graph().Linear() {
		t.Fatal("diamond graph reported linear")
	}
	var in []any
	for i := 0; i < 100; i++ {
		in = append(in, i)
	}
	out, err := p.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		// head: i+1; double: 2(i+1); negate: -(i+1); sum: i+1.
		if want := i + 1; v.(int) != want {
			t.Fatalf("out[%d] = %v, want %d", i, v, want)
		}
	}
}

func TestSplitMergeSimulate(t *testing.T) {
	// Simulation-only variant (nil fns) of the same diamond.
	p, err := New(
		Stage("head", nil, Weight(0.05), OutBytes(1e5)),
		Split(
			Branch(Stage("left", nil, Weight(0.2), OutBytes(1e5), Replicable())),
			Branch(Stage("right", nil, Weight(0.2), OutBytes(1e5), Replicable())),
		),
		Merge("tail", nil, Weight(0.05)),
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := HomogeneousGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Simulate(g, SimOptions{Items: 300, Seed: 3, InBytes: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 300 {
		t.Fatalf("done = %d", rep.Done)
	}
	// Both branches bound the rate at 1/0.2 with the branch stages on
	// their own nodes; throughput must be in that regime, far above
	// the serial-work bound would allow if branches serialised badly.
	if rep.Throughput < 2.5 {
		t.Fatalf("throughput = %v, want ≥ 2.5", rep.Throughput)
	}
	if rep.MeanLatency <= 0 {
		t.Fatalf("mean latency = %v", rep.MeanLatency)
	}
}

func TestNewHardening(t *testing.T) {
	cases := []struct {
		name string
		defs []StageDef
		want string
	}{
		{"duplicate names", []StageDef{
			Stage("x", ident), Stage("x", ident),
		}, "duplicate stage name"},
		{"zero replicas", []StageDef{
			Stage("x", ident, Replicas(0)),
		}, "non-positive replicas"},
		{"negative replicas", []StageDef{
			Stage("x", ident, Replicas(-3)),
		}, "non-positive replicas"},
		{"replicas without replicable", []StageDef{
			Stage("x", ident, Replicas(4)),
		}, "not Replicable"},
		{"zero buffer", []StageDef{
			Stage("x", ident, Buffer(0)),
		}, "non-positive buffer"},
		{"leading split", []StageDef{
			Split(Branch(Stage("a", ident)), Branch(Stage("b", ident))),
			Merge("m", ident),
		}, "cannot start with a Split"},
		{"single-branch split", []StageDef{
			Stage("h", ident),
			Split(Branch(Stage("a", ident))),
			Merge("m", ident),
		}, "at least 2 branches"},
		{"empty branch", []StageDef{
			Stage("h", ident),
			Split(Branch(), Branch(Stage("b", ident))),
			Merge("m", ident),
		}, "branch 0 is empty"},
		{"merge without split", []StageDef{
			Stage("h", ident), Merge("m", ident),
		}, "without a preceding Split"},
		{"unclosed split", []StageDef{
			Stage("h", ident),
			Split(Branch(Stage("a", ident)), Branch(Stage("b", ident))),
		}, "ends inside a Split"},
		{"plain stage after split", []StageDef{
			Stage("h", ident),
			Split(Branch(Stage("a", ident)), Branch(Stage("b", ident))),
			Stage("t", ident),
		}, "follows a Split"},
		{"nested split in branch", []StageDef{
			Stage("h", ident),
			Split(
				Branch(Split(Branch(Stage("a", ident)), Branch(Stage("b", ident)))),
				Branch(Stage("c", ident)),
			),
			Merge("m", ident),
		}, "nested Split"},
	}
	for _, c := range cases {
		_, err := New(c.defs...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestBranchChains(t *testing.T) {
	// Multi-stage branches flatten in order and still join 1-for-1.
	p, err := New(
		Stage("h", ident, Weight(0.01)),
		Split(
			Branch(
				Stage("a1", func(_ context.Context, v any) (any, error) { return v.(int) + 10, nil }, Weight(0.01)),
				Stage("a2", func(_ context.Context, v any) (any, error) { return v.(int) * 10, nil }, Weight(0.01)),
			),
			Branch(Stage("b", ident, Weight(0.01))),
		),
		Merge("j", func(_ context.Context, v any) (any, error) {
			parts := v.([]any)
			return parts[0].(int) - parts[1].(int), nil
		}, Weight(0.01)),
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Process(context.Background(), []any{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		x := i + 1
		if want := (x+10)*10 - x; v.(int) != want {
			t.Fatalf("out[%d] = %v, want %d", i, v, want)
		}
	}
}
