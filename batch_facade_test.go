package gridpipe

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestWithBatchOrderedOutputUnchanged(t *testing.T) {
	mk := func() *Pipeline {
		p, err := New(
			Stage("tag", func(_ context.Context, v any) (any, error) {
				return fmt.Sprintf("t%d", v), nil
			}, Weight(0.01)),
			Stage("up", func(_ context.Context, v any) (any, error) {
				return v.(string) + "!", nil
			}, Weight(0.02), Replicable(), Replicas(3)),
		)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	in := make([]any, 200)
	for i := range in {
		in[i] = i
	}
	plain := mk()
	want, err := plain.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	batched := mk()
	if err := batched.WithBatch(16, BatchOptions{Linger: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	got, err := batched.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWithBatchValidates(t *testing.T) {
	p, err := New(Stage("a", sleeper(time.Microsecond), Weight(0.01)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WithBatch(0); err == nil {
		t.Fatal("WithBatch(0) accepted")
	}
	if err := p.WithBatch(-7); err == nil {
		t.Fatal("WithBatch(-7) accepted")
	}
	// Auto grain without a live controller must refuse at build time.
	if err := p.WithBatch(GrainAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Process(context.Background(), []any{1}); err == nil {
		t.Fatal("GrainAuto without WithLiveAdaptive should fail to start")
	}
}

func TestWithBatchGrainAutoReports(t *testing.T) {
	p, err := New(
		Stage("w", func(_ context.Context, v any) (any, error) { return v, nil },
			Weight(0.01), Replicable(), Replicas(2)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WithLiveAdaptive(PolicyPeriodic, LiveAdaptiveOptions{
		Interval: 10 * time.Millisecond,
		Cooldown: 20 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.WithBatch(GrainAuto, BatchOptions{Max: 32}); err != nil {
		t.Fatal(err)
	}
	in := make([]any, 50000)
	for i := range in {
		in[i] = i
	}
	out, err := p.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], in[i])
		}
	}
	rep := p.LiveAdaptiveReport()
	if rep.Grain < 1 || rep.Grain > 32 {
		t.Fatalf("reported grain %d outside [1, 32]", rep.Grain)
	}
}
