# Tier-1 gate (`make check`) plus developer conveniences.

GO ?= go

.PHONY: check build vet test bench-smoke bench bench-json alloc-gate race

check: build vet test bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# A short benchmark smoke: the hot-path micro-benchmarks only, one
# quick pass each, with -benchmem so allocation regressions surface in
# the gate.
bench-smoke:
	$(GO) test -run '^$$' -bench 'EngineScheduleStep|ReorderStage$$|FarmUnordered|ExecRunItems' -benchmem -benchtime 100x .

# The full benchmark suite: every experiment + every micro-benchmark.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate the machine-readable perf snapshot (see DESIGN.md,
# "Benchmark protocol"; bump the file number to your PR number).
bench-json:
	$(GO) run ./cmd/pipebench -bench -benchout BENCH_4.json

# Allocation-regression gate (the CI alloc-gate job): fail if any
# hot-path micro-benchmark allocates per item.
alloc-gate:
	$(GO) run ./cmd/pipebench -bench -benchout BENCH_4.json -maxallocs 0

race:
	$(GO) test -race ./...
