# Tier-1 gate (`make check`) plus developer conveniences.

GO ?= go

.PHONY: check build vet test bench-smoke bench bench-json bench-diff alloc-gate stress-smoke grain-smoke race

check: build vet test bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# A short benchmark smoke: the hot-path micro-benchmarks only, one
# quick pass each, with -benchmem so allocation regressions surface in
# the gate.
bench-smoke:
	$(GO) test -run '^$$' -bench 'EngineScheduleStep|PartitionWindow|ReorderStage$$|BatchBoundary|FarmUnordered|ExecRunItems' -benchmem -benchtime 100x .

# The full benchmark suite: every experiment + every micro-benchmark.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate the machine-readable perf snapshot (see DESIGN.md,
# "Benchmark protocol"; bump the file number to your PR number).
bench-json:
	$(GO) run ./cmd/pipebench -bench -stress -benchout BENCH_10.json

# Perf-regression gate: run a fresh snapshot and diff it against the
# latest committed BENCH_<n>.json — fail on >MAXREGRESS ns/op
# regression or any allocs/op increase on a hot path (the CI
# bench-diff job). The 20% default assumes the same machine class as
# the snapshot; CI overrides it (cross-hardware ns/op skew), keeping
# the alloc half of the gate exact everywhere.
MAXREGRESS ?= 0.20
bench-diff:
	$(GO) run ./cmd/pipebench -bench -benchout /tmp/bench_fresh.json \
		-diff "$$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1)" -maxregress $(MAXREGRESS)

# Allocation-regression gate (the CI alloc-gate job): fail if any
# hot-path micro-benchmark allocates per item.
alloc-gate:
	$(GO) run ./cmd/pipebench -bench -benchout BENCH_10.json -maxallocs 0

# A short RPS-ramp smoke (the CI stress-smoke step): a small grid and
# coarse ramp, just enough to exercise trace generation → SubmitTrace
# → knee detection end to end. The full-resolution ramp ships in the
# committed BENCH_<n>.json via bench-json.
stress-smoke:
	$(GO) run ./cmd/pipebench -stress -stress-nodes 4 -stress-items 10 \
		-stress-start 2 -stress-step 3 -stress-steps 4 -stress-horizon 60 \
		-benchout /tmp/stress_smoke.json

# A short grain-sweep smoke (the CI grain-smoke step): two ladder
# points with a reduced item count, just enough to exercise the
# batched boundary's throughput and paced-p99 measurement end to end.
# The full ladder ships in the committed BENCH_<n>.json `batch`
# section via bench-json.
grain-smoke:
	$(GO) run ./cmd/pipebench -grainsweep -grain 1,8 -grain-items 10000

race:
	$(GO) test -race ./...
