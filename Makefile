# Tier-1 gate (`make check`) plus developer conveniences.

GO ?= go

.PHONY: check build vet test bench-smoke bench bench-json race

check: build vet test bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# A short benchmark smoke: the hot-path micro-benchmarks only, one
# quick pass each, with -benchmem so allocation regressions surface in
# the gate.
bench-smoke:
	$(GO) test -run '^$$' -bench 'EngineScheduleStep|ReorderStage$$|FarmUnordered|ExecRunItems' -benchmem -benchtime 100x .

# The full benchmark suite: every experiment + every micro-benchmark.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate the machine-readable perf snapshot (see DESIGN.md,
# "Benchmark protocol"; bump the file number to your PR number).
bench-json:
	$(GO) run ./cmd/pipebench -bench -benchout BENCH_3.json

race:
	$(GO) test -race ./...
