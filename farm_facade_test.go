package gridpipe

import (
	"context"
	"errors"
	"sort"
	"testing"
)

func TestFarmOrdered(t *testing.T) {
	f, err := NewFarm(func(ctx context.Context, v any) (any, error) {
		return v.(int) * 3, nil
	}, FarmOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]any, 50)
	for i := range in {
		in[i] = i
	}
	out, err := f.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v.(int) != i*3 {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
	st := f.Stats()
	if st.Done != 50 || st.Workers != 4 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestFarmUnordered(t *testing.T) {
	f, err := NewFarm(func(ctx context.Context, v any) (any, error) {
		return v, nil
	}, FarmOptions{Workers: 3, Unordered: true})
	if err != nil {
		t.Fatal(err)
	}
	in := []any{3, 1, 2}
	out, err := f.Process(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	got := []int{out[0].(int), out[1].(int), out[2].(int)}
	sort.Ints(got)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("multiset wrong: %v", got)
	}
}

func TestFarmErrors(t *testing.T) {
	if _, err := NewFarm(nil, FarmOptions{}); err == nil {
		t.Fatal("nil fn accepted")
	}
	boom := errors.New("boom")
	f, err := NewFarm(func(ctx context.Context, v any) (any, error) {
		return nil, boom
	}, FarmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Process(context.Background(), []any{1}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestFarmSetWorkers(t *testing.T) {
	f, err := NewFarm(func(ctx context.Context, v any) (any, error) { return v, nil },
		FarmOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetWorkers(0); err == nil {
		t.Fatal("zero workers accepted")
	}
	if err := f.SetWorkers(6); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Workers != 6 {
		t.Fatalf("Workers = %d", f.Stats().Workers)
	}
}
