package gridpipe

import (
	"context"
	"time"

	"gridpipe/internal/farm"
)

// Farm is the task-farm skeleton: a dynamic pool of workers applying
// one function to a stream of independent tasks. It is the standalone
// form of a replicated pipeline stage; use it when the application is a
// single parallel step rather than a chain.
type Farm struct {
	f *farm.Farm
}

// FarmOptions tune a Farm.
type FarmOptions struct {
	// Workers is the initial worker limit (default 1).
	Workers int
	// Buffer is the input buffer capacity (default the worker count).
	Buffer int
	// Unordered delivers results in completion order instead of input
	// order.
	Unordered bool
}

// FarmStats is a snapshot of a farm's counters.
type FarmStats struct {
	Workers     int
	Done        int
	MeanService time.Duration
	MaxService  time.Duration
}

// NewFarm builds a farm over the worker function.
func NewFarm(fn StageFunc, opts FarmOptions) (*Farm, error) {
	f, err := farm.New(farm.Func(fn), farm.Options{
		Workers:   opts.Workers,
		Buffer:    opts.Buffer,
		Unordered: opts.Unordered,
	})
	if err != nil {
		return nil, err
	}
	return &Farm{f: f}, nil
}

// Process runs the farm over a slice of tasks.
func (f *Farm) Process(ctx context.Context, tasks []any) ([]any, error) {
	return f.f.Process(ctx, tasks)
}

// Run starts the farm over a stream; channel semantics match
// Pipeline.Run.
func (f *Farm) Run(ctx context.Context, tasks <-chan any) (<-chan any, <-chan error) {
	return f.f.Run(ctx, tasks)
}

// SetWorkers resizes the pool while running (minimum 1).
func (f *Farm) SetWorkers(n int) error { return f.f.SetWorkers(n) }

// Stats snapshots the farm's counters.
func (f *Farm) Stats() FarmStats {
	st := f.f.Stats()
	return FarmStats{
		Workers:     st.Workers,
		Done:        st.Done,
		MeanService: st.MeanService,
		MaxService:  st.MaxService,
	}
}
